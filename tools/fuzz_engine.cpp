/**
 * @file
 * fuzz_engine: mutation-based differential fuzzing of all four engines on
 * malformed and adversarial inputs.
 *
 * difftest fuzzes *well-formed* documents; this harness attacks the other
 * half of the robustness contract. It takes the deterministic workload
 * generators as seed documents, applies single-byte structural mutations
 * (delete/insert/flip brackets and quotes, escape damage, truncation at
 * every 64-byte block boundary), and checks every engine against an
 * independent scalar structural oracle:
 *
 *  - if the mutant is still structurally well-formed and the strict DOM
 *    parser accepts it, every engine must return an ok status and the
 *    exact DOM match set (no skip may be confused by near-miss damage);
 *  - if the oracle says the mutant is damaged, every engine must return a
 *    non-ok, non-limit EngineStatus — never a silently truncated match
 *    set, never a crash (run under the asan preset for full effect).
 *
 * Documented detection limitations are encoded here, in one place:
 * head-skip mode and the JSONSki baseline cannot flag trailing content
 * after an atomic root (see DESIGN.md, "Error handling & limits").
 *
 *   fuzz_engine [--iterations N] [--seed S] [--verbose]
 *   fuzz_engine --ndjson N [--seed S]
 *
 * --ndjson N: NDJSON mutation mode for the record-stream subsystem. Small
 * workload documents are concatenated into NDJSON streams, the *whole
 * stream* is mutated (including newline insertion/deletion, so record
 * boundaries themselves get attacked), and the sharded StreamExecutor — at
 * several thread counts, under both error policies — is checked against a
 * scalar reference splitter plus sequential per-record engine runs over
 * isolated PaddedString copies.
 *
 * Exits non-zero on the first disagreement, printing a self-contained
 * reproducer (seed dataset, mutation, document, statuses).
 */
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "descend/baselines/dom_engine.h"
#include "descend/baselines/ski_engine.h"
#include "descend/baselines/surfer_engine.h"
#include "descend/descend.h"
#include "descend/json/dom.h"
#include "descend/workloads/datasets.h"

namespace {

using namespace descend;

// ---------------------------------------------------------------------------
// Independent structural oracle.
//
// A deliberately naive scalar scan sharing no code with the engines: string
// and escape tracking, a bracket stack with kinds, root/trailing tracking.
// It models exactly the *structural* layer the streaming engines promise to
// validate; token grammar (bad literals, missing commas) is out of scope —
// the strict DOM parser covers that side.
// ---------------------------------------------------------------------------

enum class OracleClass {
    kOk,        ///< structurally well-formed
    kEmpty,     ///< nothing but whitespace
    kMalformed, ///< unbalanced / mismatched / truncated string / BOM
    kTrailing,  ///< non-whitespace after the completed root value
    kDepth,     ///< nesting beyond EngineLimits::max_depth
};

const char* oracle_class_name(OracleClass cls)
{
    switch (cls) {
        case OracleClass::kOk: return "ok";
        case OracleClass::kEmpty: return "empty";
        case OracleClass::kMalformed: return "malformed";
        case OracleClass::kTrailing: return "trailing";
        case OracleClass::kDepth: return "depth";
    }
    return "?";
}

bool oracle_is_ws(char c)
{
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

OracleClass classify_structure(const std::string& doc, std::size_t max_depth)
{
    if (doc.size() >= 3 && std::memcmp(doc.data(), "\xEF\xBB\xBF", 3) == 0) {
        return OracleClass::kMalformed;
    }
    std::vector<char> stack;
    bool in_string = false;
    bool escaped = false;
    bool root_done = false;
    bool in_root_atom = false;
    for (std::size_t i = 0; i < doc.size(); ++i) {
        char c = doc[i];
        if (in_string) {
            if (escaped) {
                escaped = false;
            } else if (c == '\\') {
                escaped = true;
            } else if (c == '"') {
                in_string = false;
                if (stack.empty() && !in_root_atom) {
                    root_done = true;
                }
            }
            continue;
        }
        bool structural = c == '{' || c == '}' || c == '[' || c == ']' ||
                          c == '"' || c == ',' || c == ':';
        if (in_root_atom && (oracle_is_ws(c) || structural)) {
            in_root_atom = false;
            root_done = true;
        }
        if (oracle_is_ws(c)) {
            continue;
        }
        if (stack.empty() && root_done && c != '}' && c != ']') {
            return OracleClass::kTrailing;
        }
        switch (c) {
            case '{':
            case '[':
                if (stack.size() >= max_depth) {
                    return OracleClass::kDepth;
                }
                stack.push_back(c);
                break;
            case '}':
            case ']':
                if (stack.empty()) {
                    return OracleClass::kMalformed;  // stray closer
                }
                if ((c == '}') != (stack.back() == '{')) {
                    return OracleClass::kMalformed;  // kind mismatch
                }
                stack.pop_back();
                if (stack.empty()) {
                    root_done = true;
                }
                break;
            case '"':
                in_string = true;
                break;
            case ',':
            case ':':
                break;  // grammar, not structure
            default:
                if (stack.empty()) {
                    in_root_atom = true;  // root atom byte
                }
                break;
        }
    }
    if (in_string) {
        return OracleClass::kMalformed;  // truncated string (incl. lone '\')
    }
    if (!stack.empty()) {
        return OracleClass::kMalformed;  // input ended inside containers
    }
    if (!root_done && !in_root_atom) {
        return OracleClass::kEmpty;
    }
    return OracleClass::kOk;
}

// ---------------------------------------------------------------------------
// Deterministic byte mutations.
// ---------------------------------------------------------------------------

struct Mutation {
    std::string description;
    std::string document;
};

std::vector<std::size_t> positions_of(const std::string& doc, const char* set)
{
    std::vector<std::size_t> positions;
    for (std::size_t i = 0; i < doc.size(); ++i) {
        if (std::strchr(set, doc[i]) != nullptr) {
            positions.push_back(i);
        }
    }
    return positions;
}

template <typename Rng>
std::size_t pick(Rng& rng, std::size_t bound)
{
    return static_cast<std::size_t>(rng() % bound);
}

/** Applies one structural mutation chosen by @p rng; nullopt if the chosen
 *  kind has no applicable site in this document. */
template <typename Rng>
std::optional<Mutation> mutate(const std::string& seed, Rng& rng)
{
    std::string doc = seed;
    switch (rng() % 8) {
        case 0: {  // delete a bracket
            std::vector<std::size_t> sites = positions_of(doc, "{}[]");
            if (sites.empty()) return std::nullopt;
            std::size_t at = sites[pick(rng, sites.size())];
            char victim = doc[at];
            doc.erase(at, 1);
            return Mutation{"delete '" + std::string(1, victim) + "' at " +
                                std::to_string(at),
                            doc};
        }
        case 1: {  // insert a bracket anywhere
            const char brackets[] = {'{', '}', '[', ']'};
            char inserted = brackets[pick(rng, 4)];
            std::size_t at = pick(rng, doc.size() + 1);
            doc.insert(at, 1, inserted);
            return Mutation{"insert '" + std::string(1, inserted) + "' at " +
                                std::to_string(at),
                            doc};
        }
        case 2: {  // flip a bracket's kind ({<->[ or }<->])
            std::vector<std::size_t> sites = positions_of(doc, "{}[]");
            if (sites.empty()) return std::nullopt;
            std::size_t at = sites[pick(rng, sites.size())];
            char from = doc[at];
            char to = from == '{' ? '[' : from == '[' ? '{' : from == '}' ? ']' : '}';
            doc[at] = to;
            return Mutation{std::string("flip '") + from + "' -> '" + to +
                                "' at " + std::to_string(at),
                            doc};
        }
        case 3: {  // flip a bracket's side ({<->} or [<->])
            std::vector<std::size_t> sites = positions_of(doc, "{}[]");
            if (sites.empty()) return std::nullopt;
            std::size_t at = sites[pick(rng, sites.size())];
            char from = doc[at];
            char to = from == '{' ? '}' : from == '}' ? '{' : from == '[' ? ']' : '[';
            doc[at] = to;
            return Mutation{std::string("flip '") + from + "' -> '" + to +
                                "' at " + std::to_string(at),
                            doc};
        }
        case 4: {  // delete a quote
            std::vector<std::size_t> sites = positions_of(doc, "\"");
            if (sites.empty()) return std::nullopt;
            std::size_t at = sites[pick(rng, sites.size())];
            doc.erase(at, 1);
            return Mutation{"delete '\"' at " + std::to_string(at), doc};
        }
        case 5: {  // insert a quote anywhere
            std::size_t at = pick(rng, doc.size() + 1);
            doc.insert(at, 1, '"');
            return Mutation{"insert '\"' at " + std::to_string(at), doc};
        }
        case 6: {  // escape damage: insert '\' before a quote, or delete one
            std::vector<std::size_t> slashes = positions_of(doc, "\\");
            if (!slashes.empty() && rng() % 2 == 0) {
                std::size_t at = slashes[pick(rng, slashes.size())];
                doc.erase(at, 1);
                return Mutation{"delete '\\' at " + std::to_string(at), doc};
            }
            std::vector<std::size_t> quotes = positions_of(doc, "\"");
            if (quotes.empty()) return std::nullopt;
            std::size_t at = quotes[pick(rng, quotes.size())];
            doc.insert(at, 1, '\\');
            return Mutation{"insert '\\' before quote at " + std::to_string(at),
                            doc};
        }
        case 7: {  // truncate at an arbitrary position
            if (doc.size() < 2) return std::nullopt;
            std::size_t at = 1 + pick(rng, doc.size() - 1);
            doc.resize(at);
            return Mutation{"truncate to " + std::to_string(at) + " bytes", doc};
        }
    }
    return std::nullopt;
}

// ---------------------------------------------------------------------------
// Engine harness.
// ---------------------------------------------------------------------------

/** Every kernel tier this host can run, best first (scalar is the oracle). */
std::vector<simd::Level> available_levels()
{
    std::vector<simd::Level> levels;
    if (simd::avx512_available()) {
        levels.push_back(simd::Level::avx512);
    }
    if (simd::avx2_available()) {
        levels.push_back(simd::Level::avx2);
    }
    levels.push_back(simd::Level::scalar);
    return levels;
}

/** The main-engine configurations with distinct detection paths. */
std::vector<EngineOptions> descend_configurations()
{
    std::vector<EngineOptions> configs;
    for (simd::Level level : available_levels()) {
        EngineOptions defaults;
        defaults.simd = level;
        configs.push_back(defaults);
        EngineOptions no_skips;
        no_skips.simd = level;
        no_skips.leaf_skipping = false;
        no_skips.child_skipping = false;
        no_skips.sibling_skipping = false;
        no_skips.head_skipping = false;
        configs.push_back(no_skips);
        EngineOptions within;
        within.simd = level;
        within.label_within_skipping = true;
        configs.push_back(within);
    }
    return configs;
}

std::string describe(const EngineOptions& o)
{
    std::string s = simd::level_name(o.simd);
    s += o.head_skipping ? "+head" : "-head";
    s += o.child_skipping ? "+skips" : "-skips";
    s += o.label_within_skipping ? "+within" : "";
    return s;
}

/** One seed document plus the queries derived from its label vocabulary. */
struct Corpus {
    std::string name;
    std::string document;
    std::vector<std::string> queries;    ///< for descend / surfer / dom
    std::string ski_query;               ///< child-only, for the jsonski baseline
};

void collect_labels(const json::Value& value, std::vector<std::string>& labels,
                    std::size_t limit)
{
    if (labels.size() >= limit) {
        return;
    }
    for (const json::Member& member : value.members()) {
        bool known = false;
        for (const std::string& existing : labels) {
            known = known || existing == member.key;
        }
        if (!known && !member.key.empty()) {
            labels.push_back(member.key);
        }
        collect_labels(*member.value, labels, limit);
    }
    for (const json::Value* element : value.elements()) {
        collect_labels(*element, labels, limit);
    }
}

Corpus build_corpus(const std::string& name, std::size_t target_bytes)
{
    Corpus corpus;
    corpus.name = name;
    corpus.document = workloads::generate(name, target_bytes);
    json::Document dom = json::parse(corpus.document);
    std::vector<std::string> labels;
    collect_labels(dom.root(), labels, 4);

    corpus.queries.push_back("$.*");
    for (std::size_t i = 0; i < labels.size() && i < 2; ++i) {
        corpus.queries.push_back("$.." + labels[i]);
    }
    if (labels.size() >= 2) {
        corpus.queries.push_back("$.." + labels[0] + ".." + labels[1]);
    }
    if (dom.root().is_object() && !dom.root().members().empty()) {
        corpus.ski_query = "$." + dom.root().members().front().key;
    } else {
        corpus.ski_query = "$[0]";
    }
    return corpus;
}

struct Stats {
    long mutants = 0;
    long still_valid = 0;
    long rejected = 0;
    long per_class[5] = {0, 0, 0, 0, 0};
};

int report(const Corpus& corpus, const Mutation& mutation, OracleClass oracle,
           const std::string& engine, const std::string& query,
           const std::string& detail, const std::string& document)
{
    std::printf(
        "DISAGREEMENT\nseed: %s\nmutation: %s\noracle: %s\nengine: %s\n"
        "query: %s\nproblem: %s\ndocument (%zu bytes):\n%.*s\n",
        corpus.name.c_str(), mutation.description.c_str(),
        oracle_class_name(oracle), engine.c_str(), query.c_str(),
        detail.c_str(), document.size(),
        static_cast<int>(document.size() > 2000 ? 2000 : document.size()),
        document.c_str());
    return 1;
}

std::string offsets_text(const std::vector<std::size_t>& offsets)
{
    std::string text = "[";
    for (std::size_t i = 0; i < offsets.size() && i < 16; ++i) {
        text += (i ? " " : "") + std::to_string(offsets[i]);
    }
    if (offsets.size() > 16) {
        text += " ...";
    }
    return text + "] (" + std::to_string(offsets.size()) + ")";
}

/**
 * Runs every engine over one (possibly mutated) document and checks the
 * cross-engine contract. Returns 0 when consistent.
 */
int check_document(const Corpus& corpus, const Mutation& mutation, Stats& stats)
{
    const std::string& document = mutation.document;
    EngineLimits limits;
    OracleClass oracle = classify_structure(document, limits.max_depth);
    stats.per_class[static_cast<int>(oracle)] += 1;
    PaddedString padded(document);

    for (const std::string& query_text : corpus.queries) {
        auto compiled = automaton::CompiledQuery::compile(query_text);
        DomEngine dom(query::Query::parse(query_text));
        OffsetSink dom_sink;
        EngineStatus dom_status = dom.run(padded, dom_sink);
        // The DOM parser is strictly more demanding than the structural
        // oracle: anything the oracle rejects, it must reject too.
        if (oracle != OracleClass::kOk && dom_status.ok()) {
            return report(corpus, mutation, oracle, "dom", query_text,
                          "accepted a structurally damaged document", document);
        }
        bool compare_matches = oracle == OracleClass::kOk && dom_status.ok();
        if (compare_matches) {
            stats.still_valid += 1;
        }

        SurferEngine surfer(compiled);
        OffsetSink surfer_sink;
        EngineStatus surfer_status = surfer.run(padded, surfer_sink);
        if (compare_matches) {
            if (!surfer_status.ok()) {
                return report(corpus, mutation, oracle, "surfer", query_text,
                              "false positive: " + to_string(surfer_status),
                              document);
            }
            if (surfer_sink.offsets() != dom_sink.offsets()) {
                return report(corpus, mutation, oracle, "surfer", query_text,
                              "matches diverge: dom " +
                                  offsets_text(dom_sink.offsets()) + " vs " +
                                  offsets_text(surfer_sink.offsets()),
                              document);
            }
        } else if (oracle != OracleClass::kOk) {
            // The surfer tracks the root element scalar-ly: full detection.
            if (surfer_status.ok()) {
                return report(corpus, mutation, oracle, "surfer", query_text,
                              "accepted a damaged document", document);
            }
            if (surfer_status.is_limit() && oracle != OracleClass::kDepth) {
                return report(corpus, mutation, oracle, "surfer", query_text,
                              "misclassified damage as a resource limit: " +
                                  to_string(surfer_status),
                              document);
            }
        }

        for (const EngineOptions& options : descend_configurations()) {
            DescendEngine engine(compiled, options);
            OffsetSink sink;
            RunStats run_stats = engine.run_with_stats(padded, sink);
            EngineStatus status = run_stats.status;
            std::string name = "descend[" + describe(options) + "]";
            // Block-attribution invariant (DESIGN.md §4.6): every run —
            // including early-error and limit-hit runs over damaged input —
            // must account each 64-byte block exactly once across the six
            // attribution counters. Holds by construction; checked here so
            // the fuzzer exercises it over millions of malformed documents.
            if constexpr (obs::kEnabled) {
                std::uint64_t accounted =
                    obs::accounted_blocks(run_stats.counters);
                std::uint64_t total = obs::total_blocks(padded.size());
                if (accounted != total) {
                    return report(corpus, mutation, oracle, name, query_text,
                                  "obs block accounting broken: accounted " +
                                      std::to_string(accounted) + " of " +
                                      std::to_string(total) + " blocks",
                                  document);
                }
            }
            if (compare_matches) {
                if (!status.ok()) {
                    return report(corpus, mutation, oracle, name, query_text,
                                  "false positive: " + to_string(status),
                                  document);
                }
                if (sink.offsets() != dom_sink.offsets()) {
                    return report(corpus, mutation, oracle, name, query_text,
                                  "matches diverge: dom " +
                                      offsets_text(dom_sink.offsets()) + " vs " +
                                      offsets_text(sink.offsets()),
                                  document);
                }
                continue;
            }
            if (oracle == OracleClass::kOk) {
                continue;  // grammar-level damage: streaming engines may pass
            }
            // Documented limitation: head-skip mode never observes the root
            // element, so balanced trailing content is invisible to it.
            bool head_skip_active = options.head_skipping &&
                                    compiled.head_skip_label().has_value();
            if (oracle == OracleClass::kTrailing && head_skip_active) {
                continue;
            }
            if (status.ok()) {
                return report(corpus, mutation, oracle, name, query_text,
                              "accepted a damaged document", document);
            }
            if (status.is_limit() && oracle != OracleClass::kDepth) {
                return report(corpus, mutation, oracle, name, query_text,
                              "misclassified damage as a resource limit: " +
                                  to_string(status),
                              document);
            }
        }
    }

    // The JSONSki baseline: child-only query, status classification only
    // (its wildcard semantics differ by design, and it cannot see trailing
    // content after an atomic root).
    SkiEngine ski(query::Query::parse(corpus.ski_query));
    CountSink ski_sink;
    EngineStatus ski_status = ski.run(padded, ski_sink);
    if ((oracle == OracleClass::kMalformed || oracle == OracleClass::kEmpty ||
         oracle == OracleClass::kDepth) &&
        ski_status.ok()) {
        return report(corpus, mutation, oracle, "jsonski", corpus.ski_query,
                      "accepted a damaged document", document);
    }
    if (oracle != OracleClass::kOk) {
        stats.rejected += 1;
    }
    return 0;
}

// ---------------------------------------------------------------------------
// NDJSON mutation mode: differential fuzzing of the record-stream subsystem.
// ---------------------------------------------------------------------------

/**
 * Scalar reference splitter sharing no code with stream::split_records:
 * naive per-byte string/escape tracking, newline splits, whitespace
 * trimming — the independent oracle for record boundaries. Escape
 * semantics follow the quote classifier's (simdjson's) convention: a quote
 * preceded by an odd run of backslashes is never a string delimiter,
 * regardless of whether the run sits inside a string — on damaged streams
 * the two conventions genuinely differ and the classifier's is the
 * subsystem's contract.
 */
std::vector<stream::RecordSpan> reference_split(const std::string& text)
{
    std::vector<stream::RecordSpan> spans;
    auto emit = [&](std::size_t begin, std::size_t end) {
        while (begin < end && oracle_is_ws(text[begin])) {
            ++begin;
        }
        while (end > begin && oracle_is_ws(text[end - 1])) {
            --end;
        }
        if (begin < end) {
            spans.push_back({begin, end});
        }
    };
    bool in_string = false;
    bool escaped = false;
    std::size_t start = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        if (c == '\\') {
            escaped = !escaped;
            continue;
        }
        if (c == '"' && !escaped) {
            in_string = !in_string;
        } else if (c == '\n' && !in_string) {
            emit(start, i);
            start = i + 1;
        }
        escaped = false;
    }
    emit(start, text.size());
    return spans;
}

/** Mutates a stream: the single-document mutations plus newline attacks. */
template <typename Rng>
std::optional<Mutation> mutate_stream(const std::string& seed, Rng& rng)
{
    switch (rng() % 4) {
        case 0: {  // insert a newline anywhere (splits a record, or lands
                   // inside a string where it must NOT split)
            std::string doc = seed;
            std::size_t at = pick(rng, doc.size() + 1);
            doc.insert(at, 1, '\n');
            return Mutation{"insert '\\n' at " + std::to_string(at), doc};
        }
        case 1: {  // delete a newline (fuses two records into one)
            std::vector<std::size_t> sites = positions_of(seed, "\n");
            if (sites.empty()) return std::nullopt;
            std::string doc = seed;
            std::size_t at = sites[pick(rng, sites.size())];
            doc.erase(at, 1);
            return Mutation{"delete '\\n' at " + std::to_string(at), doc};
        }
        default:
            return mutate(seed, rng);
    }
}

int report_stream(const std::string& name, const Mutation& mutation,
                  const std::string& configuration, const std::string& detail,
                  const std::string& document)
{
    std::printf(
        "STREAM DISAGREEMENT\nseed: %s\nmutation: %s\nconfiguration: %s\n"
        "problem: %s\ndocument (%zu bytes):\n%.*s\n",
        name.c_str(), mutation.description.c_str(), configuration.c_str(),
        detail.c_str(), document.size(),
        static_cast<int>(document.size() > 2000 ? 2000 : document.size()),
        document.c_str());
    return 1;
}

/**
 * Checks one (possibly mutated) NDJSON stream: splitter vs the scalar
 * reference, then the sharded executor at several thread counts and under
 * both policies vs sequential per-record runs over isolated copies.
 */
int check_stream(const std::string& name, const Mutation& mutation,
                 const std::string& query_text, Stats& stats)
{
    const std::string& text = mutation.document;
    PaddedString padded(text);
    std::vector<stream::RecordSpan> expected_spans = reference_split(text);
    for (simd::Level level : available_levels()) {
        std::vector<stream::RecordSpan> spans =
            stream::split_records(padded, simd::kernels_for(level));
        if (spans != expected_spans) {
            return report_stream(
                name, mutation,
                std::string("split[") + simd::level_name(level) + "]",
                "record spans diverge from the scalar reference splitter "
                "(counts " +
                    std::to_string(spans.size()) + " vs " +
                    std::to_string(expected_spans.size()) + ")",
                text);
        }
    }

    // Sequential per-record oracle over isolated copies.
    DescendEngine engine = DescendEngine::for_query(query_text);
    std::vector<stream::CollectingStreamSink::Match> skip_matches;
    std::vector<stream::CollectingStreamSink::RecordError> skip_errors;
    for (std::size_t r = 0; r < expected_spans.size(); ++r) {
        const stream::RecordSpan& span = expected_spans[r];
        PaddedString copy(
            std::string_view(text).substr(span.begin, span.size()));
        OffsetsResult result = engine.offsets_checked(copy);
        if (result.ok()) {
            for (std::size_t offset : result.offsets) {
                skip_matches.push_back({r, offset});
            }
        } else {
            skip_errors.push_back({r, result.status});
        }
    }
    // Fail-fast expectation: cut the skip-policy result at the first error.
    std::vector<stream::CollectingStreamSink::Match> fast_matches;
    std::vector<stream::CollectingStreamSink::RecordError> fast_errors;
    std::size_t first_failed = skip_errors.empty()
                                   ? stream::StreamResult::kNone
                                   : skip_errors.front().record;
    for (const auto& match : skip_matches) {
        if (match.record < first_failed) {
            fast_matches.push_back(match);
        }
    }
    if (!skip_errors.empty()) {
        fast_errors.push_back(skip_errors.front());
    }

    for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
        for (stream::ErrorPolicy policy : {stream::ErrorPolicy::kSkipRecord,
                                           stream::ErrorPolicy::kFailFast}) {
            bool fail_fast = policy == stream::ErrorPolicy::kFailFast;
            stream::StreamOptions options;
            options.threads = threads;
            options.policy = policy;
            options.records_per_batch = 3;  // small batches: more shuffling
            stream::StreamExecutor executor(
                automaton::CompiledQuery::compile(query_text), options);
            stream::CollectingStreamSink sink;
            stream::StreamResult result = executor.run(padded, sink);
            std::string configuration =
                "executor[threads=" + std::to_string(threads) +
                (fail_fast ? ",fail-fast]" : ",skip]");
            const auto& want_matches = fail_fast ? fast_matches : skip_matches;
            const auto& want_errors = fail_fast ? fast_errors : skip_errors;
            if (sink.matches() != want_matches) {
                return report_stream(name, mutation, configuration,
                                     "matches diverge from the sequential "
                                     "oracle (" +
                                         std::to_string(sink.matches().size()) +
                                         " vs " +
                                         std::to_string(want_matches.size()) +
                                         ")",
                                     text);
            }
            if (sink.errors() != want_errors) {
                return report_stream(
                    name, mutation, configuration,
                    "record errors diverge from the sequential oracle",
                    text);
            }
            if (result.records != expected_spans.size() ||
                result.matches != want_matches.size() ||
                result.failed_records != want_errors.size()) {
                return report_stream(name, mutation, configuration,
                                     "aggregate StreamResult counters are "
                                     "inconsistent with the delivered stream",
                                     text);
            }
        }
    }
    if (!skip_errors.empty()) {
        stats.rejected += 1;
    } else {
        stats.still_valid += 1;
    }
    return 0;
}

int run_ndjson_mode(long iterations, std::uint64_t seed0, bool verbose)
{
    // Streams of small records from every generator; one stream per
    // dataset, queried with a descendant and a wildcard query.
    struct StreamCorpus {
        std::string name;
        std::string text;
    };
    std::vector<StreamCorpus> corpora;
    for (const std::string& name : workloads::dataset_names()) {
        std::string text;
        for (std::size_t i = 0; i < 5; ++i) {
            text += workloads::generate(name, 400 + i * 230);
            text += '\n';
        }
        corpora.push_back({name, text});
    }
    const char* queries[] = {"$.*", "$..id"};

    Stats stats;
    // Pristine streams must already agree everywhere.
    for (const StreamCorpus& corpus : corpora) {
        Mutation pristine{"none (pristine stream)", corpus.text};
        for (const char* query : queries) {
            if (int rc = check_stream(corpus.name, pristine, query, stats)) {
                return rc;
            }
        }
    }
    for (long i = 0; i < iterations; ++i) {
        const StreamCorpus& corpus =
            corpora[static_cast<std::size_t>(i) % corpora.size()];
        std::mt19937_64 rng(seed0 * 0x9E3779B97F4A7C15ull +
                            static_cast<std::uint64_t>(i) + 0x51ED0A3Bull);
        std::optional<Mutation> mutation = mutate_stream(corpus.text, rng);
        if (!mutation.has_value()) {
            continue;
        }
        stats.mutants += 1;
        const char* query = queries[rng() % 2];
        if (int rc = check_stream(corpus.name, *mutation, query, stats)) {
            std::printf("iteration: %ld (reproduce with --seed %llu)\n", i,
                        static_cast<unsigned long long>(seed0));
            return rc;
        }
        if (verbose && (i + 1) % 500 == 0) {
            std::printf("... %ld/%ld\n", i + 1, iterations);
        }
    }
    std::printf("fuzz_engine --ndjson: %ld stream mutants over %zu seeds OK\n"
                "  clean streams: %ld, streams with failed records: %ld\n",
                stats.mutants, corpora.size(), stats.still_valid,
                stats.rejected);
    return 0;
}

}  // namespace

int main(int argc, char** argv)
{
    long iterations = 10000;
    long ndjson_iterations = -1;
    std::uint64_t seed0 = 1;
    bool verbose = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--ndjson") == 0 && i + 1 < argc) {
            char* end = nullptr;
            ndjson_iterations = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || ndjson_iterations < 0) {
                std::fprintf(stderr, "fuzz_engine: bad --ndjson '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
            char* end = nullptr;
            iterations = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || iterations < 0) {
                std::fprintf(stderr, "fuzz_engine: bad --iterations '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            char* end = nullptr;
            seed0 = std::strtoull(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0') {
                std::fprintf(stderr, "fuzz_engine: bad --seed '%s'\n", argv[i]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--verbose") == 0) {
            verbose = true;
        } else {
            std::fprintf(stderr,
                         "usage: fuzz_engine [--iterations N] [--seed S] "
                         "[--verbose] | --ndjson N [--seed S]\n");
            return 2;
        }
    }
    if (ndjson_iterations >= 0) {
        return run_ndjson_mode(ndjson_iterations, seed0, verbose);
    }

    std::vector<Corpus> corpora;
    std::size_t target = 2048;
    for (const std::string& name : workloads::dataset_names()) {
        corpora.push_back(build_corpus(name, target));
        target = target >= 8192 ? 2048 : target + 700;
    }

    Stats stats;
    // Phase 1: pristine seeds must pass everything (sanity for the harness
    // itself), and truncation at *every* 64-byte block boundary — the
    // classifiers' resume points — must be flagged.
    for (const Corpus& corpus : corpora) {
        Mutation pristine{"none (pristine seed)", corpus.document};
        if (int rc = check_document(corpus, pristine, stats)) {
            return rc;
        }
        for (std::size_t cut = 64; cut < corpus.document.size(); cut += 64) {
            Mutation truncated{"truncate to " + std::to_string(cut) +
                                   " bytes (block boundary)",
                               corpus.document.substr(0, cut)};
            stats.mutants += 1;
            if (int rc = check_document(corpus, truncated, stats)) {
                return rc;
            }
        }
        if (verbose) {
            std::printf("seed %-14s %6zu bytes, %zu queries, ski: %s\n",
                        corpus.name.c_str(), corpus.document.size(),
                        corpus.queries.size(), corpus.ski_query.c_str());
        }
    }

    // Phase 2: random structural mutations, deterministic per iteration.
    for (long i = 0; i < iterations; ++i) {
        const Corpus& corpus = corpora[static_cast<std::size_t>(i) % corpora.size()];
        std::mt19937_64 rng(seed0 * 0x9E3779B97F4A7C15ull +
                            static_cast<std::uint64_t>(i));
        std::optional<Mutation> mutation = mutate(corpus.document, rng);
        if (!mutation.has_value()) {
            continue;
        }
        stats.mutants += 1;
        if (int rc = check_document(corpus, *mutation, stats)) {
            std::printf("iteration: %ld (reproduce with --seed %llu and this "
                        "iteration)\n",
                        i, static_cast<unsigned long long>(seed0));
            return rc;
        }
        if (verbose && (i + 1) % 1000 == 0) {
            std::printf("... %ld/%ld\n", i + 1, iterations);
        }
    }

    std::printf(
        "fuzz_engine: %ld mutants over %zu seeds OK\n"
        "  oracle classes: ok %ld, empty %ld, malformed %ld, trailing %ld, "
        "depth %ld\n"
        "  still-valid (full match comparison): %ld, rejected by contract: %ld\n",
        stats.mutants, corpora.size(), stats.per_class[0], stats.per_class[1],
        stats.per_class[2], stats.per_class[3], stats.per_class[4],
        stats.still_valid, stats.rejected);
    return 0;
}
