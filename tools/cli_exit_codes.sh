#!/usr/bin/env bash
# Asserts descend-cli's documented exit-code taxonomy:
#   0 ok, 1 internal error, 2 usage, 3 malformed input,
#   4 limit/deadline, 5 file I/O.
# Usage: cli_exit_codes.sh <path-to-descend-cli>
set -u

CLI="${1:?usage: cli_exit_codes.sh <path-to-descend-cli>}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail=0
check() {
    local want="$1"; shift
    local label="$1"; shift
    "$@" >/dev/null 2>&1
    local got=$?
    if [ "$got" -ne "$want" ]; then
        echo "FAIL: $label: expected exit $want, got $got ($*)" >&2
        fail=1
    else
        echo "ok: $label -> $got"
    fi
}

printf '{"a": {"b": 1}}' > "$WORK/ok.json"
printf '{"a": {"b": 1}' > "$WORK/truncated.json"
python3 -c "print('['*2000 + ']'*2000)" > "$WORK/deep.json" 2>/dev/null \
    || { printf '%0.s[' $(seq 2000); printf '%0.s]' $(seq 2000); } > "$WORK/deep.json"
printf '{"id":1}\n{"id":2}\n' > "$WORK/stream.ndjson"
printf '{"id":1}\n{"id": \n{"id":3}\n' > "$WORK/broken.ndjson"

# 0: success, single-document and NDJSON.
check 0 "well-formed document"        "$CLI" '$..b' "$WORK/ok.json"
check 0 "clean ndjson stream"         "$CLI" --ndjson '$..id' "$WORK/stream.ndjson"
check 0 "retry-scalar clean stream"   "$CLI" --ndjson --retry-scalar '$..id' "$WORK/stream.ndjson"
check 0 "generous deadline"           "$CLI" --deadline-ms 60000 '$..b' "$WORK/ok.json"
check 0 "projected slices"            "$CLI" --project slices '$..b' "$WORK/ok.json"
check 0 "projected ndjson stream"     "$CLI" --ndjson --project ndjson '$..id' "$WORK/stream.ndjson"

# 2: usage errors (bad flags, bad query, conflicting policies).
check 2 "unknown flag"                "$CLI" --no-such-flag '$..b' "$WORK/ok.json"
check 2 "missing query"               "$CLI"
check 2 "malformed query"             "$CLI" '$.[' "$WORK/ok.json"
check 2 "conflicting error policies"  "$CLI" --ndjson --fail-fast --retry-scalar '$..id' "$WORK/stream.ndjson"
check 2 "projection vs count"         "$CLI" --project slices --count '$..b' "$WORK/ok.json"
check 2 "unknown projection mode"     "$CLI" --project verbose '$..b' "$WORK/ok.json"

# 2: selector forms the grammar deliberately rejects (negative indices,
# stepped slices, descendant slices/unions/filters, non-final filters).
check 2 "negative index"              "$CLI" '$[-1]' "$WORK/ok.json"
check 2 "fractional index"            "$CLI" '$[1.5]' "$WORK/ok.json"
check 2 "negative slice bound"        "$CLI" '$[1:-1]' "$WORK/ok.json"
check 2 "stepped slice"               "$CLI" '$[1:4:2]' "$WORK/ok.json"
check 2 "descendant slice"            "$CLI" '$..[1:2]' "$WORK/ok.json"
check 2 "descendant union"            "$CLI" "\$..['a','b']" "$WORK/ok.json"
check 2 "descendant filter"           "$CLI" '$..[?(@.x)]' "$WORK/ok.json"
check 2 "non-final filter"            "$CLI" '$.a[?(@.x)].y' "$WORK/ok.json"
check 2 "malformed filter literal"    "$CLI" '$[?(@.x==01)]' "$WORK/ok.json"
check 2 "single-equals filter"        "$CLI" '$[?(@.x=1)]' "$WORK/ok.json"

# 4: the product backend refuses filter selectors; a pinned --fused=product
# multi-query run must fail as a limit, while auto falls back to lanes.
check 4 "filter pinned to product"    "$CLI" --fused=product --count --query '$.a[?(@.b)]' --query '$..b' "$WORK/ok.json"
check 0 "filter under fused auto"     "$CLI" --count --query '$.a[?(@.b)]' --query '$..b' "$WORK/ok.json"

# 3: malformed input.
check 3 "truncated document"          "$CLI" '$..b' "$WORK/truncated.json"
check 3 "broken ndjson record"        "$CLI" --ndjson '$..id' "$WORK/broken.ndjson"

# 4: resource limits and governance stops. ($.* has no head-skip label, so
# the depth limit is enforced on the full-document pipeline.)
check 4 "depth limit"                 "$CLI" '$.*' "$WORK/deep.json"
check 4 "depth limit (dom engine)"    "$CLI" --engine dom '$.*' "$WORK/deep.json"

# 5: file I/O.
check 5 "missing file"                "$CLI" '$..b' "$WORK/does-not-exist.json"

# Error messages for stream records carry absolute byte offsets.
msg="$("$CLI" --ndjson '$..id' "$WORK/broken.ndjson" 2>&1 >/dev/null)"
case "$msg" in
    *"record 1 at byte"*) echo "ok: absolute stream error position" ;;
    *) echo "FAIL: stream error lacks absolute position: $msg" >&2; fail=1 ;;
esac

exit $fail
