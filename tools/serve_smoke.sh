#!/usr/bin/env bash
# End-to-end smoke for the descend-serve daemon, driven over a real Unix
# socket by the stdlib-only Python client (tools/serve_client.py):
#   * startup readiness ("listening on" line), happy paths for all three
#     request modes, cache warm-up across requests,
#   * malformed frames get structured statuses and never kill the daemon,
#   * per-request deadlines and tenant match caps are enforced,
#   * SIGTERM drains gracefully: daemon exits 0 and prints its summary.
# Usage: serve_smoke.sh <path-to-descend-serve> [path-to-serve_client.py]
set -u

SERVE="${1:?usage: serve_smoke.sh <path-to-descend-serve> [client.py]}"
CLIENT="${2:-"$(dirname "$0")/serve_client.py"}"
WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill -KILL "$SERVER_PID" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

SOCK="$WORK/serve.sock"

fail=0
check() {
    local want="$1"; shift
    local label="$1"; shift
    "$@" >"$WORK/last.out" 2>&1
    local got=$?
    if [ "$got" -ne "$want" ]; then
        echo "FAIL: $label: expected exit $want, got $got ($*)" >&2
        sed 's/^/  | /' "$WORK/last.out" >&2
        fail=1
    else
        echo "ok: $label -> $got"
    fi
}
expect_output() {
    local label="$1" needle="$2"
    if grep -q "$needle" "$WORK/last.out"; then
        echo "ok: $label"
    else
        echo "FAIL: $label: output lacks '$needle'" >&2
        sed 's/^/  | /' "$WORK/last.out" >&2
        fail=1
    fi
}
client() {
    python3 "$CLIENT" --socket "$SOCK" "$@"
}

# Fixtures: a small document, an NDJSON stream, and a large document that a
# 1 ms deadline cannot finish (the engine polls the deadline per batch).
printf '{"a": {"b": 1}, "c": {"b": 2}}' > "$WORK/ok.json"
printf '{"id": 1}\n{"id": 2}\n{"id": 3}\n' > "$WORK/stream.ndjson"
python3 -c 'import sys; sys.stdout.write("[" + ",".join(["{\"a\":1}"] * 4000000) + "]")' \
    > "$WORK/big.json"

# Usage errors before any socket work.
check 2 "usage: no endpoint"       "$SERVE"
check 2 "usage: unknown flag"      "$SERVE" --socket "$SOCK" --no-such-flag
check 5 "socket failure: bad path" "$SERVE" --socket "$WORK/missing-dir/sock"

# Start the daemon and wait for its single readiness line on stdout.
"$SERVE" --socket "$SOCK" --drain-ms 2000 \
    > "$WORK/serve.out" 2> "$WORK/serve.err" &
SERVER_PID=$!
for _ in $(seq 100); do
    grep -q "listening on unix:$SOCK" "$WORK/serve.out" 2>/dev/null && break
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
done
if ! grep -q "listening on unix:$SOCK" "$WORK/serve.out" 2>/dev/null; then
    echo "FAIL: daemon never printed its readiness line" >&2
    cat "$WORK/serve.err" >&2
    exit 1
fi

# Happy paths: one request per mode, offsets on.
check 0 "single-mode happy path" \
    client --offsets '$..b' "$WORK/ok.json"
expect_output "single-mode match count" "matches=2"
check 0 "multi-mode happy path" \
    client --mode multi --offsets "$(printf '$..b\n$.c.b')" "$WORK/ok.json"
expect_output "multi-mode match count" "matches=3"
check 0 "ndjson-mode happy path" \
    client --mode ndjson --offsets '$..id' "$WORK/stream.ndjson"
expect_output "ndjson-mode match count" "matches=3"

# The second identical query must be answered from the automaton cache.
check 0 "cache hit on repeat query" client '$..b' "$WORK/ok.json"
expect_output "cache hit flagged" "cache=hit"

# Projected-response round-trip: the values body must carry the matched
# subtrees byte-verbatim, in document order, in every mode.
check 0 "single-mode projected values" \
    client --values '$.a' "$WORK/ok.json"
expect_output "projected subtree bytes" '^{"b": 1}$'
check 0 "multi-mode projected values" \
    client --mode multi --values "$(printf '$.a.b\n$.c.b')" "$WORK/ok.json"
expect_output "multi projected first owner" "^1$"
expect_output "multi projected second owner" "^2$"
check 0 "ndjson-mode projected values" \
    client --mode ndjson --values '$.id' "$WORK/stream.ndjson"
expect_output "ndjson projected record value" "^3$"

# Malformed frames: structured status, and the daemon survives to serve
# the next request on a fresh connection.
check 0 "garbage frame -> bad-magic" \
    client --raw-hex "deadbeefdeadbeefdeadbeef" --expect bad-magic
check 0 "broken query -> bad-query" \
    client --expect bad-query '$.[broken' "$WORK/ok.json"
check 0 "daemon survives malformed frames" client '$..b' "$WORK/ok.json"

# Governance: a 1 ms deadline over a 32 MiB document must trip, and a
# tenant match cap of 1 must stop the run with a match-limit status.
check 0 "deadline exceeded" \
    client --deadline-ms 1 --expect deadline-exceeded '$..a' "$WORK/big.json"
check 0 "tenant match cap" \
    client --max-matches 1 --expect match-limit '$..b' "$WORK/ok.json"

# Graceful drain: SIGTERM, daemon exits 0 and prints its summary line.
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
SERVE_EXIT=$?
SERVER_PID=""
if [ "$SERVE_EXIT" -ne 0 ]; then
    echo "FAIL: SIGTERM drain: expected exit 0, got $SERVE_EXIT" >&2
    cat "$WORK/serve.err" >&2
    fail=1
else
    echo "ok: SIGTERM drain -> 0"
fi
if grep -q "descend-serve: served" "$WORK/serve.err"; then
    echo "ok: shutdown summary printed"
else
    echo "FAIL: shutdown summary missing from stderr" >&2
    fail=1
fi

exit $fail
