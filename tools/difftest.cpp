/**
 * @file
 * difftest: standalone differential fuzzing harness.
 *
 * Generates random (document, query) pairs and checks that the DOM oracle,
 * the surfer baseline, and the main engine in every configuration report
 * identical match sets — the same invariant as the gtest property suite,
 * but runnable open-endedly:
 *
 *   difftest [iterations] [start-seed]
 *
 * On a mismatch it prints a self-contained reproducer (document, query,
 * configuration, both offset lists) and exits non-zero, so long fuzzing
 * runs can feed the regression corpus in tests/property_test.cpp.
 */
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "descend/baselines/dom_engine.h"
#include "descend/baselines/surfer_engine.h"
#include "descend/descend.h"
#include "descend/workloads/random_json.h"

namespace {

using namespace descend;

std::vector<EngineOptions> configurations()
{
    std::vector<EngineOptions> configs;
    for (simd::Level level : {simd::Level::avx2, simd::Level::scalar}) {
        for (int bits = 0; bits < 32; ++bits) {
            EngineOptions options;
            options.simd = level;
            options.leaf_skipping = bits & 1;
            options.child_skipping = bits & 2;
            options.sibling_skipping = bits & 4;
            options.head_skipping = bits & 8;
            options.label_within_skipping = bits & 16;
            configs.push_back(options);
        }
    }
    return configs;
}

std::string describe(const EngineOptions& o)
{
    std::string s = o.simd == simd::Level::avx2 ? "avx2" : "scalar";
    s += o.leaf_skipping ? "+leaf" : "";
    s += o.child_skipping ? "+child" : "";
    s += o.sibling_skipping ? "+sibling" : "";
    s += o.head_skipping ? "+head" : "";
    s += o.label_within_skipping ? "+within" : "";
    return s;
}

void print_offsets(const char* name, const std::vector<std::size_t>& offsets)
{
    std::printf("  %s (%zu):", name, offsets.size());
    for (std::size_t offset : offsets) {
        std::printf(" %zu", offset);
    }
    std::printf("\n");
}

int report_mismatch(const std::string& document, const std::string& query,
                    const std::string& engine_name,
                    const std::vector<std::size_t>& expected,
                    const std::vector<std::size_t>& actual)
{
    std::printf("MISMATCH\nquery: %s\nengine: %s\ndocument:\n%s\n",
                query.c_str(), engine_name.c_str(), document.c_str());
    print_offsets("oracle", expected);
    print_offsets("engine", actual);
    return 1;
}

int report_status(const std::string& document, const std::string& query,
                  const std::string& engine_name, const EngineStatus& status)
{
    std::printf(
        "FALSE POSITIVE (non-ok status on well-formed input)\n"
        "query: %s\nengine: %s\nstatus: %s\ndocument:\n%s\n",
        query.c_str(), engine_name.c_str(), to_string(status).c_str(),
        document.c_str());
    return 1;
}

}  // namespace

int main(int argc, char** argv)
{
    long iterations = argc >= 2 ? std::strtol(argv[1], nullptr, 10) : 2000;
    std::uint64_t seed0 = argc >= 3 ? std::strtoull(argv[2], nullptr, 10) : 1;
    std::vector<EngineOptions> configs = configurations();

    for (long i = 0; i < iterations; ++i) {
        std::uint64_t seed = seed0 + static_cast<std::uint64_t>(i);
        workloads::RandomJsonOptions options;
        options.seed = seed;
        options.max_depth = 4 + static_cast<int>(seed % 14);
        options.max_width = 3 + static_cast<int>(seed % 9);
        options.whitespace_chance = static_cast<unsigned>(seed * 7 % 60);
        options.nasty_string_chance = static_cast<unsigned>(seed * 13 % 70);
        std::string document = workloads::random_json(options);
        PaddedString padded(document);

        for (int q = 0; q < 4; ++q) {
            std::string query_text = workloads::random_query(
                seed * 977 + static_cast<std::uint64_t>(q), options.label_pool, 6,
                /*allow_indices=*/true);
            auto compiled = automaton::CompiledQuery::compile(query_text);
            DomEngine oracle(query::Query::parse(query_text));
            OffsetSink oracle_sink;
            EngineStatus oracle_status = oracle.run(padded, oracle_sink);
            if (!oracle_status.ok()) {
                return report_status(document, query_text, "dom", oracle_status);
            }
            const std::vector<std::size_t>& expected = oracle_sink.offsets();

            SurferEngine surfer(compiled);
            OffsetSink surfer_sink;
            EngineStatus surfer_status = surfer.run(padded, surfer_sink);
            if (!surfer_status.ok()) {
                // Generated documents are well-formed: any non-ok status is
                // a validator false positive.
                return report_status(document, query_text, "surfer",
                                     surfer_status);
            }
            if (surfer_sink.offsets() != expected) {
                return report_mismatch(document, query_text, "surfer", expected,
                                       surfer_sink.offsets());
            }
            for (const EngineOptions& config : configs) {
                DescendEngine engine(compiled, config);
                OffsetSink sink;
                EngineStatus status = engine.run(padded, sink);
                if (!status.ok()) {
                    return report_status(document, query_text,
                                         "descend[" + describe(config) + "]",
                                         status);
                }
                if (sink.offsets() != expected) {
                    return report_mismatch(document, query_text,
                                           "descend[" + describe(config) + "]",
                                           expected, sink.offsets());
                }
            }
        }
        if ((i + 1) % 200 == 0) {
            std::printf("... %ld/%ld ok (seed %llu)\n", i + 1, iterations,
                        static_cast<unsigned long long>(seed));
        }
    }
    std::printf("difftest: %ld iterations x 4 queries x %zu configurations OK\n",
                iterations, configs.size() + 1);
    return 0;
}
