/**
 * @file
 * Baseline engine tests: the surfer engine against the DOM oracle, and the
 * JSONSki-like engine on its supported fragment (including its documented
 * non-idiomatic wildcard and type-assumption behaviour).
 */
#include <gtest/gtest.h>

#include <string>

#include "descend/baselines/dom_engine.h"
#include "descend/baselines/ski_engine.h"
#include "descend/baselines/surfer_engine.h"
#include "descend/descend.h"
#include "descend/util/errors.h"

namespace descend {
namespace {

std::vector<std::size_t> dom_offsets(const std::string& query,
                                     const std::string& document)
{
    DomEngine oracle(query::Query::parse(query));
    PaddedString padded(document);
    OffsetsResult result = oracle.offsets_checked(padded);
    EXPECT_TRUE(result.ok()) << "oracle rejected the document: "
                             << to_string(result.status);
    return result.offsets;
}

TEST(SurferEngine, AgreesWithOracle)
{
    const char* documents[] = {
        R"({"a": {"b": [1, 2, {"a": 3}]}, "c": "x"})",
        R"([[1], {"a": [2, {"b": 3}]}, "s"])",
        R"({"deep": {"deep": {"deep": {"a": 1}}}})",
    };
    const char* queries[] = {"$", "$.a", "$..a", "$.a.b.*", "$..b", "$.*.*",
                             "$..a..b", "$[1].a[1].b", "$..*"};
    for (const char* document : documents) {
        PaddedString padded(document);
        for (const char* query : queries) {
            SurferEngine surfer(automaton::CompiledQuery::compile(query));
            EXPECT_EQ(surfer.offsets(padded), dom_offsets(query, document))
                << query << " on " << document;
        }
    }
}

TEST(SkiEngine, RejectsDescendants)
{
    EXPECT_THROW(SkiEngine::for_query("$..a"), QueryError);
    EXPECT_THROW(SkiEngine::for_query("$.a..b"), QueryError);
    EXPECT_NO_THROW(SkiEngine::for_query("$.a.*.b[3]"));
}

TEST(SkiEngine, ChildPathsAgreeWithOracle)
{
    std::string document =
        R"({"products": [{"id": 1, "price": {"v": 9}}, {"id": 2}], "x": 0})";
    PaddedString padded(document);
    for (const char* query : {"$.products", "$.x"}) {
        SkiEngine ski = SkiEngine::for_query(query);
        EXPECT_EQ(ski.offsets(padded), dom_offsets(query, document)) << query;
    }
}

TEST(SkiEngine, ArrayWildcardChains)
{
    std::string document = R"({"items": [{"name": "a"}, {"name": "b"},)"
                           R"( {"nope": 1}, {"name": "c"}]})";
    PaddedString padded(document);
    SkiEngine ski = SkiEngine::for_query("$.items.*.name");
    EXPECT_EQ(ski.offsets(padded), dom_offsets("$.items[*].name", document));
    EXPECT_EQ(ski.count(padded), 3u);
}

TEST(SkiEngine, WildcardIsArrayOnly)
{
    // JSONSki's wildcard does NOT step into object members: on an object it
    // matches nothing (the paper's motivating limitation).
    std::string document = R"({"a": {"x": 1, "y": 2}})";
    PaddedString padded(document);
    SkiEngine ski = SkiEngine::for_query("$.a.*");
    EXPECT_EQ(ski.count(padded), 0u);
    // The idiomatic engine disagrees by design.
    auto full = DescendEngine::for_query("$.a.*");
    EXPECT_EQ(full.count(padded), 2u);
}

TEST(SkiEngine, TypeAssumptionSkipsMismatchedValues)
{
    // .b with a following wildcard means b must hold an array; an object b
    // is skipped wholesale (no descent).
    std::string document = R"({"b": {"0": {"c": 5}}, "z": 1})";
    PaddedString padded(document);
    SkiEngine ski = SkiEngine::for_query("$.b.*.c");
    EXPECT_EQ(ski.count(padded), 0u);
}

TEST(SkiEngine, IndexSelectors)
{
    std::string document = R"({"a": [[10, 20], [30, 40], [50]]})";
    PaddedString padded(document);
    EXPECT_EQ(SkiEngine::for_query("$.a[1][0]").count(padded), 1u);
    EXPECT_EQ(SkiEngine::for_query("$.a[1][0]").offsets(padded),
              dom_offsets("$.a[1][0]", document));
    EXPECT_EQ(SkiEngine::for_query("$.a[2][1]").count(padded), 0u);
    EXPECT_EQ(SkiEngine::for_query("$.a[0].*").count(padded), 2u);
}

TEST(SkiEngine, DeepRealisticShape)
{
    std::string document = R"({"routes": [)"
                           R"({"legs": [{"steps": [{"distance": {"text": "1 km"}},)"
                           R"( {"distance": {"text": "2 km"}}]}]},)"
                           R"({"legs": [{"steps": [{"distance": {"text": "3 km"}}]}]})"
                           R"(]})";
    PaddedString padded(document);
    SkiEngine ski = SkiEngine::for_query("$.routes.*.legs.*.steps.*.distance.text");
    EXPECT_EQ(ski.count(padded), 3u);
    EXPECT_EQ(
        ski.offsets(padded),
        dom_offsets("$.routes[*].legs[*].steps[*].distance.text", document));
}

TEST(SkiEngine, LastLevelReportsAnyValueType)
{
    // B3-style query: the final selector has no type assumption.
    std::string document =
        R"({"products": [{"videoChapters": [1]}, {"videoChapters": {"x": 2}},)"
        R"( {"videoChapters": 7}, {"other": 0}]})";
    PaddedString padded(document);
    SkiEngine ski = SkiEngine::for_query("$.products.*.videoChapters");
    EXPECT_EQ(ski.count(padded), 3u);
}

TEST(DomEngine, OffsetsMatchMainEngineConvention)
{
    std::string document = R"({"a": [ {"b": 1}, 2 ]})";
    PaddedString padded(document);
    auto main_offsets = DescendEngine::for_query("$.a.*").offsets(padded);
    EXPECT_EQ(main_offsets, dom_offsets("$.a.*", document));
    ASSERT_EQ(main_offsets.size(), 2u);
    EXPECT_EQ(document[main_offsets[0]], '{');
    EXPECT_EQ(document[main_offsets[1]], '2');
}

}  // namespace
}  // namespace descend
