/**
 * @file
 * Unit tests for the util substrate: bit primitives (against naive
 * references), the inline-storage vector, and the kind bit-stack.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "descend/util/bit_stack.h"
#include "descend/util/bits.h"
#include "descend/util/inline_vector.h"
#include "descend/workloads/builder.h"

namespace descend {
namespace {

TEST(Bits, MaskHelpers)
{
    EXPECT_EQ(bits::mask_below(0), 0u);
    EXPECT_EQ(bits::mask_below(1), 1u);
    EXPECT_EQ(bits::mask_below(64), ~0ULL);
    EXPECT_EQ(bits::mask_from(0), ~0ULL);
    EXPECT_EQ(bits::mask_from(63), 1ULL << 63);
    EXPECT_EQ(bits::mask_from(64), 0u);
    for (int i = 0; i <= 64; ++i) {
        EXPECT_EQ(bits::mask_below(i) ^ bits::mask_from(i), ~0ULL);
    }
}

TEST(Bits, TrailingZerosAndClear)
{
    EXPECT_EQ(bits::trailing_zeros(0), 64);
    EXPECT_EQ(bits::trailing_zeros(1), 0);
    EXPECT_EQ(bits::trailing_zeros(0b1010000), 4);
    EXPECT_EQ(bits::clear_lowest_bit(0b1010000), 0b1000000u);
}

std::uint64_t naive_prefix_xor(std::uint64_t mask)
{
    std::uint64_t result = 0;
    bool parity = false;
    for (int i = 0; i < 64; ++i) {
        parity ^= (mask >> i) & 1;
        result |= static_cast<std::uint64_t>(parity) << i;
    }
    return result;
}

TEST(Bits, PrefixXorMatchesNaive)
{
    workloads::Rng rng(42);
    EXPECT_EQ(bits::prefix_xor(0), 0u);
    EXPECT_EQ(bits::prefix_xor(1), ~0ULL);
    for (int trial = 0; trial < 2000; ++trial) {
        std::uint64_t mask = rng.next();
        EXPECT_EQ(bits::prefix_xor(mask), naive_prefix_xor(mask)) << mask;
    }
}

/** Naive escape analysis: walk bytes, track backslash run parity. */
std::uint64_t naive_find_escaped(std::uint64_t backslashes, bool carry_in,
                                 bool& carry_out)
{
    std::uint64_t escaped = 0;
    bool escape_next = carry_in;
    for (int i = 0; i < 64; ++i) {
        if (escape_next) {
            escaped |= 1ULL << i;
            escape_next = false;
            continue;
        }
        if ((backslashes >> i) & 1) {
            escape_next = true;
        }
    }
    carry_out = escape_next;
    return escaped;
}

TEST(Bits, FindEscapedMatchesNaive)
{
    workloads::Rng rng(7);
    for (int trial = 0; trial < 5000; ++trial) {
        // Dense backslash masks exercise long runs and carries.
        std::uint64_t mask = rng.next() | (rng.chance(50) ? rng.next() : 0);
        if (rng.chance(20)) {
            mask = ~0ULL << rng.below(64);  // run to the end of the block
        }
        for (bool carry_in : {false, true}) {
            bool fast_carry = false;
            bool naive_carry = false;
            std::uint64_t fast = bits::find_escaped(mask, carry_in, fast_carry);
            std::uint64_t naive = naive_find_escaped(mask, carry_in, naive_carry);
            ASSERT_EQ(fast, naive) << "mask=" << mask << " carry=" << carry_in;
            ASSERT_EQ(fast_carry, naive_carry) << "mask=" << mask;
        }
    }
}

TEST(Bits, FindEscapedKnownCases)
{
    bool carry = false;
    // \" : the quote (bit 1) is escaped.
    EXPECT_EQ(bits::find_escaped(0b01, false, carry), 0b10u);
    EXPECT_FALSE(carry);
    // \\" : the second backslash is escaped, the quote is not.
    EXPECT_EQ(bits::find_escaped(0b011, false, carry), 0b010u);
    // \\\" : quote escaped (odd run).
    EXPECT_EQ(bits::find_escaped(0b0111, false, carry), 0b1010u);
    // Odd run reaching the end carries into the next block.
    bits::find_escaped(~0ULL << 1, false, carry);
    EXPECT_TRUE(carry);
    bits::find_escaped(~0ULL, false, carry);
    EXPECT_FALSE(carry);
}

TEST(Bits, BitIterVisitsAscending)
{
    std::uint64_t mask = (1ULL << 3) | (1ULL << 17) | (1ULL << 63);
    std::vector<int> seen;
    for (bits::BitIter it(mask); !it.done(); it.advance()) {
        seen.push_back(it.index());
    }
    EXPECT_EQ(seen, (std::vector<int>{3, 17, 63}));
}

TEST(InlineVector, StaysInlineThenSpills)
{
    InlineVector<int, 4> vec;
    EXPECT_TRUE(vec.is_inline());
    for (int i = 0; i < 4; ++i) {
        vec.push_back(i);
    }
    EXPECT_TRUE(vec.is_inline());
    vec.push_back(4);
    EXPECT_FALSE(vec.is_inline());
    EXPECT_EQ(vec.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(vec[static_cast<std::size_t>(i)], i);
    }
}

TEST(InlineVector, PushPopBack)
{
    InlineVector<int, 2> vec;
    vec.push_back(10);
    vec.push_back(20);
    EXPECT_EQ(vec.back(), 20);
    vec.pop_back();
    EXPECT_EQ(vec.back(), 10);
    vec.pop_back();
    EXPECT_TRUE(vec.empty());
}

TEST(InlineVector, GrowthPreservesContents)
{
    InlineVector<std::uint64_t, 8> vec;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        vec.push_back(i * i);
    }
    EXPECT_EQ(vec.size(), 1000u);
    for (std::uint64_t i = 0; i < 1000; ++i) {
        ASSERT_EQ(vec[i], i * i);
    }
}

TEST(InlineVector, CopyAndMove)
{
    InlineVector<int, 2> small;
    small.push_back(1);
    InlineVector<int, 2> small_copy(small);
    small_copy.push_back(2);
    EXPECT_EQ(small.size(), 1u);
    EXPECT_EQ(small_copy.size(), 2u);

    InlineVector<int, 2> big;
    for (int i = 0; i < 100; ++i) {
        big.push_back(i);
    }
    InlineVector<int, 2> big_copy(big);
    EXPECT_EQ(big_copy.size(), 100u);
    EXPECT_EQ(big_copy[99], 99);

    InlineVector<int, 2> moved(std::move(big));
    EXPECT_EQ(moved.size(), 100u);
    EXPECT_EQ(moved[42], 42);
    EXPECT_TRUE(big.empty());  // NOLINT(bugprone-use-after-move)

    InlineVector<int, 2> assigned;
    assigned = std::move(moved);
    EXPECT_EQ(assigned.size(), 100u);
    assigned.clear();
    EXPECT_TRUE(assigned.empty());
}

TEST(BitStack, PushPopTop)
{
    BitStack stack;
    EXPECT_TRUE(stack.empty());
    stack.push(true);
    stack.push(false);
    stack.push(true);
    EXPECT_EQ(stack.size(), 3u);
    EXPECT_TRUE(stack.top());
    stack.pop();
    EXPECT_FALSE(stack.top());
    stack.pop();
    EXPECT_TRUE(stack.top());
}

TEST(BitStack, CrossesWordBoundaries)
{
    BitStack stack;
    std::vector<bool> reference;
    workloads::Rng rng(99);
    for (int i = 0; i < 500; ++i) {
        bool bit = rng.chance(50);
        stack.push(bit);
        reference.push_back(bit);
    }
    for (int i = 499; i >= 0; --i) {
        ASSERT_EQ(stack.top(), reference[static_cast<std::size_t>(i)]) << i;
        stack.pop();
    }
    EXPECT_TRUE(stack.empty());
}

TEST(BitStack, ReusableAfterClear)
{
    BitStack stack;
    for (int i = 0; i < 100; ++i) {
        stack.push(i % 2 == 0);
    }
    stack.clear();
    EXPECT_TRUE(stack.empty());
    stack.push(true);
    EXPECT_TRUE(stack.top());
}

}  // namespace
}  // namespace descend
