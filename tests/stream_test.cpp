/**
 * @file
 * Record-stream subsystem tests: SIMD NDJSON splitting, zero-copy slice
 * runs over PaddedView subviews, the parallel sharded executor (every
 * thread count must reproduce the sequential per-record result
 * byte-for-byte, under both error policies), and the PaddedString
 * from_file mmap fast path.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "descend/descend.h"
#include "descend/workloads/datasets.h"

namespace descend {
namespace {

using stream::CollectingStreamSink;
using stream::ErrorPolicy;
using stream::RecordSpan;
using stream::StreamExecutor;
using stream::StreamOptions;
using stream::StreamResult;

/** Splits with both kernel levels and demands identical spans. */
std::vector<RecordSpan> split(const PaddedString& input)
{
    std::vector<RecordSpan> simd_spans =
        stream::split_records(input, simd::best_kernels());
    std::vector<RecordSpan> scalar_spans =
        stream::split_records(input, simd::scalar_kernels());
    EXPECT_EQ(simd_spans, scalar_spans)
        << "SIMD and scalar splitters disagree";
    return simd_spans;
}

std::vector<std::string> record_texts(const PaddedString& input)
{
    std::vector<std::string> texts;
    for (const RecordSpan& span : split(input)) {
        texts.push_back(std::string(input.view().substr(span.begin, span.size())));
    }
    return texts;
}

/**
 * The sequential oracle the executor must reproduce: each record copied
 * into its own isolated PaddedString (so no slice machinery is involved)
 * and run through the engine one by one.
 */
struct OracleResult {
    std::vector<CollectingStreamSink::Match> matches;
    std::vector<CollectingStreamSink::RecordError> errors;
};

OracleResult sequential_oracle(const std::string& query,
                               const PaddedString& input,
                               const std::vector<RecordSpan>& records)
{
    DescendEngine engine = DescendEngine::for_query(query);
    OracleResult result;
    for (std::size_t r = 0; r < records.size(); ++r) {
        const RecordSpan& span = records[r];
        PaddedString copy(input.view().substr(span.begin, span.size()));
        OffsetsResult offsets = engine.offsets_checked(copy);
        if (offsets.ok()) {
            for (std::size_t offset : offsets.offsets) {
                result.matches.push_back({r, offset});
            }
        } else {
            result.errors.push_back({r, offsets.status});
        }
    }
    return result;
}

StreamResult run_stream(const std::string& query, const PaddedString& input,
                        CollectingStreamSink& sink, std::size_t threads,
                        ErrorPolicy policy = ErrorPolicy::kSkipRecord,
                        std::size_t batch = 64)
{
    StreamOptions options;
    options.threads = threads;
    options.policy = policy;
    options.records_per_batch = batch;
    StreamExecutor executor(automaton::CompiledQuery::compile(query), options);
    return executor.run(input, sink);
}

// ---------------------------------------------------------------- splitter

TEST(RecordSplitter, BasicRecordsAndTrimming)
{
    PaddedString input("{\"a\":1}\n  {\"b\":2}  \n");
    EXPECT_EQ(record_texts(input),
              (std::vector<std::string>{"{\"a\":1}", "{\"b\":2}"}));
}

TEST(RecordSplitter, NewlineInsideStringDoesNotSplit)
{
    // A raw 0x0A byte inside a string value: the quote classifier keeps the
    // in-string mask set, so this newline terminates nothing.
    PaddedString input("{\"a\":\"x\ny\"}\n{\"b\":2}\n");
    std::vector<std::string> texts = record_texts(input);
    ASSERT_EQ(texts.size(), 2u);
    EXPECT_EQ(texts[0], "{\"a\":\"x\ny\"}");
    EXPECT_EQ(texts[1], "{\"b\":2}");
}

TEST(RecordSplitter, EscapedQuoteBeforeNewline)
{
    // The string ends with an escaped quote; the newline after the real
    // closing quote must still split, and the \" must not.
    PaddedString input("{\"a\":\"say \\\"hi\\\"\"}\n{\"b\":1}\n");
    std::vector<std::string> texts = record_texts(input);
    ASSERT_EQ(texts.size(), 2u);
    EXPECT_EQ(texts[0], "{\"a\":\"say \\\"hi\\\"\"}");
    // A string whose last character is an escaped backslash: the closing
    // quote is real, the record ends normally.
    PaddedString tricky("{\"p\":\"c:\\\\\"}\n{\"q\":2}\n");
    EXPECT_EQ(record_texts(tricky).size(), 2u);
}

TEST(RecordSplitter, CrlfAndBlankLines)
{
    PaddedString input("{\"a\":1}\r\n\r\n   \r\n{\"b\":2}\r\n");
    EXPECT_EQ(record_texts(input),
              (std::vector<std::string>{"{\"a\":1}", "{\"b\":2}"}));
}

TEST(RecordSplitter, CarriageReturnSeparatesRecords)
{
    // Classic-Mac style CR-only separators split records exactly like LF.
    PaddedString cr_only("{\"a\":1}\r{\"b\":2}\r{\"c\":3}");
    EXPECT_EQ(record_texts(cr_only),
              (std::vector<std::string>{"{\"a\":1}", "{\"b\":2}", "{\"c\":3}"}));
    // CRLF is one separator, not two: the CR must not manufacture an
    // extra (empty) record in front of the LF's split.
    PaddedString crlf("{\"a\":1}\r\n{\"b\":2}");
    EXPECT_EQ(record_texts(crlf),
              (std::vector<std::string>{"{\"a\":1}", "{\"b\":2}"}));
    // A raw 0x0D inside a string is content, not a separator.
    PaddedString in_string("{\"a\":\"x\ry\"}\r{\"b\":2}");
    std::vector<std::string> texts = record_texts(in_string);
    ASSERT_EQ(texts.size(), 2u);
    EXPECT_EQ(texts[0], "{\"a\":\"x\ry\"}");
    // Trailing CR terminates the final record without adding an empty one.
    EXPECT_EQ(record_texts(PaddedString("{\"a\":1}\r")),
              (std::vector<std::string>{"{\"a\":1}"}));
}

TEST(RecordSplitter, EmptyAndWhitespaceOnlyInput)
{
    EXPECT_TRUE(split(PaddedString("")).empty());
    EXPECT_TRUE(split(PaddedString("\n\n  \r\n \t\n")).empty());
}

TEST(RecordSplitter, FinalRecordWithoutTrailingNewline)
{
    PaddedString input("{\"a\":1}\n{\"b\":2}");
    EXPECT_EQ(record_texts(input),
              (std::vector<std::string>{"{\"a\":1}", "{\"b\":2}"}));
    EXPECT_EQ(record_texts(PaddedString("{\"only\":0}")),
              (std::vector<std::string>{"{\"only\":0}"}));
}

TEST(RecordSplitter, RecordSpanningManyBlocks)
{
    // One record several 64-byte blocks long, with raw newlines inside its
    // string value straddling block boundaries.
    std::string value;
    for (int i = 0; i < 40; ++i) {
        value += "segment-" + std::to_string(i) + "\n";
    }
    std::string record = "{\"text\":\"" + value + "\"}";
    ASSERT_GT(record.size(), 6 * simd::kBlockSize);
    PaddedString input(record + "\n{\"tail\":1}\n");
    std::vector<std::string> texts = record_texts(input);
    ASSERT_EQ(texts.size(), 2u);
    EXPECT_EQ(texts[0], record);
    EXPECT_EQ(texts[1], "{\"tail\":1}");
}

TEST(RecordSplitter, UnterminatedStringFusesFollowingRecords)
{
    // The documented degradation: an unterminated string keeps the
    // in-string mask set, fusing the rest of the stream into one span that
    // then fails engine validation — an error, never silent misattribution.
    PaddedString input("{\"a\":\"unterminated}\n{\"b\":2}\n{\"c\":3}\n");
    std::vector<RecordSpan> records = split(input);
    ASSERT_EQ(records.size(), 1u);

    CollectingStreamSink sink;
    StreamResult result = run_stream("$.b", input, sink, 1);
    EXPECT_EQ(result.records, 1u);
    EXPECT_EQ(result.failed_records, 1u);
    EXPECT_TRUE(sink.matches().empty());
    ASSERT_EQ(sink.errors().size(), 1u);
    EXPECT_EQ(sink.errors()[0].status.code, StatusCode::kTruncatedString);
}

// -------------------------------------------------------- slice semantics

/** Running over a subview must equal running over an isolated copy, no
 *  matter what bytes follow the slice in the parent buffer. */
void expect_slice_equals_copy(const std::string& query,
                              const std::string& document,
                              const std::string& tail)
{
    SCOPED_TRACE("document: " + document);
    PaddedString buffer(document + tail);
    PaddedView slice = PaddedView(buffer).subview(0, document.size());
    PaddedString copy(document);

    DescendEngine engine = DescendEngine::for_query(query);
    OffsetSink slice_sink;
    EngineStatus slice_status = engine.run(slice, slice_sink);
    OffsetsResult copy_result = engine.offsets_checked(copy);
    EXPECT_EQ(slice_status, copy_result.status);
    EXPECT_EQ(slice_sink.offsets(), copy_result.offsets);
}

TEST(SliceRuns, TailBytesNeverInterpreted)
{
    // Tails full of structural noise, quotes, and garbage that would wreck
    // the result if any bit past the end bound leaked into the masks.
    std::vector<std::string> tails = {
        "}}}]]]",
        "\"}{\"x\":[1,2,3]}",
        "\\\"\\\\\"\"\"",
        std::string(200, '{'),
        "{\"a\":999}",
    };
    for (const std::string& tail : tails) {
        expect_slice_equals_copy("$.a", "{\"a\":1}", tail);
        expect_slice_equals_copy("$..b", "{\"a\":{\"b\":[1,{\"b\":2}]}}", tail);
        expect_slice_equals_copy("$.*", "[1,2,{\"x\":3},[4]]", tail);
        // Document sized to end mid-block so the partial-block masking path
        // runs (not the aligned-boundary path).
        expect_slice_equals_copy(
            "$..id", "{\"items\":[{\"id\":1},{\"id\":22},{\"id\":333}]}",
            tail);
    }
}

TEST(SliceRuns, TruncationDetectedDespiteClosingBytesInTail)
{
    // The slice ends inside a string; the bytes that would close it sit
    // just past the end bound and must not rescue the run.
    std::string document = "{\"a\":\"xy\"}";
    PaddedString buffer(document);
    PaddedView slice = PaddedView(buffer).subview(0, 8);  // {"a":"xy
    DescendEngine engine = DescendEngine::for_query("$.a");
    OffsetSink sink;
    EngineStatus status = engine.run(slice, sink);
    EXPECT_EQ(status.code, StatusCode::kTruncatedString);

    // Same for an unbalanced slice: the closers exist only past the bound.
    PaddedView open_slice = PaddedView(buffer).subview(0, 5);  // {"a":
    EngineStatus open_status = engine.run(open_slice, sink);
    EXPECT_FALSE(open_status.ok());
}

// ------------------------------------------------------------- executor

std::string well_formed_stream(std::size_t records)
{
    std::string text;
    for (std::size_t i = 0; i < records; ++i) {
        text += "{\"id\":" + std::to_string(i) + ",\"items\":[{\"id\":" +
                std::to_string(i * 10) + "},{\"id\":" +
                std::to_string(i * 10 + 1) + "}]}\n";
    }
    return text;
}

TEST(StreamExecutor, MatchesEverySequentialRunAtEveryThreadCount)
{
    PaddedString input(well_formed_stream(100));
    std::vector<RecordSpan> records = split(input);
    ASSERT_EQ(records.size(), 100u);
    for (const char* query : {"$..id", "$.items[*]", "$.*"}) {
        OracleResult expected = sequential_oracle(query, input, records);
        ASSERT_FALSE(expected.matches.empty());
        for (std::size_t threads : {1u, 2u, 4u, 8u}) {
            for (std::size_t batch : {1u, 5u, 64u}) {
                SCOPED_TRACE(std::string("query=") + query +
                             " threads=" + std::to_string(threads) +
                             " batch=" + std::to_string(batch));
                CollectingStreamSink sink;
                StreamResult result =
                    run_stream(query, input, sink, threads,
                               ErrorPolicy::kSkipRecord, batch);
                EXPECT_TRUE(result.ok());
                EXPECT_EQ(result.records, records.size());
                EXPECT_EQ(result.matches, expected.matches.size());
                EXPECT_EQ(sink.matches(), expected.matches);
                EXPECT_TRUE(sink.errors().empty());
            }
        }
    }
}

TEST(StreamExecutor, PerRecordStatusCarriesIntraRecordOffset)
{
    // Record 2 is malformed; its status must match the isolated run's,
    // offset relative to the record, not the stream.
    std::string bad = "{\"a\":[}";
    PaddedString input("{\"a\":1}\n{\"a\":2}\n" + bad + "\n{\"a\":4}\n");
    std::vector<RecordSpan> records = split(input);
    ASSERT_EQ(records.size(), 4u);

    DescendEngine engine = DescendEngine::for_query("$.a");
    OffsetsResult isolated = engine.offsets_checked(PaddedString(bad));
    ASSERT_FALSE(isolated.ok());

    CollectingStreamSink sink;
    StreamResult result = run_stream("$.a", input, sink, 2);
    EXPECT_EQ(result.failed_records, 1u);
    EXPECT_EQ(result.first_error_record, 2u);
    EXPECT_EQ(result.first_error, isolated.status);
    ASSERT_EQ(sink.errors().size(), 1u);
    EXPECT_EQ(sink.errors()[0].record, 2u);
    EXPECT_EQ(sink.errors()[0].status, isolated.status);
    // The other three records still matched.
    EXPECT_EQ(result.matches, 3u);
}

TEST(StreamExecutor, SkipPolicyReportsEveryFailureFailFastOnlyTheFirst)
{
    std::string text;
    for (std::size_t i = 0; i < 10; ++i) {
        bool broken = i == 4 || i == 7;
        text += broken ? "{\"a\":[}\n"
                       : "{\"a\":" + std::to_string(i) + "}\n";
    }
    PaddedString input(text);
    std::vector<RecordSpan> records = split(input);
    ASSERT_EQ(records.size(), 10u);

    for (std::size_t threads : {1u, 2u, 4u}) {
        for (std::size_t batch : {1u, 3u, 64u}) {
            SCOPED_TRACE("threads=" + std::to_string(threads) +
                         " batch=" + std::to_string(batch));
            CollectingStreamSink skip_sink;
            StreamResult skip = run_stream("$.a", input, skip_sink, threads,
                                           ErrorPolicy::kSkipRecord, batch);
            EXPECT_EQ(skip.failed_records, 2u);
            EXPECT_EQ(skip.first_error_record, 4u);
            EXPECT_EQ(skip.matches, 8u);
            ASSERT_EQ(skip_sink.errors().size(), 2u);
            EXPECT_EQ(skip_sink.errors()[0].record, 4u);
            EXPECT_EQ(skip_sink.errors()[1].record, 7u);

            CollectingStreamSink fast_sink;
            StreamResult fast = run_stream("$.a", input, fast_sink, threads,
                                           ErrorPolicy::kFailFast, batch);
            EXPECT_EQ(fast.failed_records, 1u);
            EXPECT_EQ(fast.first_error_record, 4u);
            // Exactly the matches of records 0..3, in order.
            EXPECT_EQ(fast.matches, 4u);
            ASSERT_EQ(fast_sink.matches().size(), 4u);
            for (std::size_t i = 0; i < 4; ++i) {
                EXPECT_EQ(fast_sink.matches()[i].record, i);
            }
            ASSERT_EQ(fast_sink.errors().size(), 1u);
            EXPECT_EQ(fast_sink.errors()[0].record, 4u);
        }
    }
}

TEST(StreamExecutor, EmptyStream)
{
    CollectingStreamSink sink;
    StreamResult result = run_stream("$.a", PaddedString("\n \n"), sink, 4);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.records, 0u);
    EXPECT_EQ(result.matches, 0u);
}

TEST(StreamExecutor, EngineLimitsApplyPerRecord)
{
    // max_match_count is a per-record limit: the flooding record fails with
    // kMatchLimit and contributes nothing; its neighbors are unaffected.
    StreamOptions options;
    options.threads = 2;
    options.engine.limits.max_match_count = 2;
    StreamExecutor executor(automaton::CompiledQuery::compile("$.*"), options);
    PaddedString input("{\"a\":1}\n[1,2,3,4,5]\n{\"b\":2}\n");
    CollectingStreamSink sink;
    StreamResult result = executor.run(input, sink);
    EXPECT_EQ(result.failed_records, 1u);
    EXPECT_EQ(result.first_error_record, 1u);
    EXPECT_EQ(result.first_error.code, StatusCode::kMatchLimit);
    EXPECT_EQ(result.matches, 2u);
}

// ------------------------------------------------- workload differential

TEST(StreamDifferential, WorkloadDatasetsAsNdjson)
{
    // Concatenate every workload generator's output as one NDJSON stream
    // (each document is a single compact line) and demand that sharded
    // execution reproduces the sequential per-record result exactly.
    std::string text;
    std::size_t docs = 0;
    for (const std::string& name : workloads::dataset_names()) {
        for (std::size_t kb : {16u, 40u}) {
            std::string doc = workloads::generate(name, kb * 1024);
            ASSERT_EQ(doc.find('\n'), std::string::npos)
                << name << " generator emitted a multi-line document";
            text += doc;
            text += '\n';
            ++docs;
        }
    }
    PaddedString input(text);
    std::vector<RecordSpan> records = split(input);
    ASSERT_EQ(records.size(), docs);

    for (const char* query : {"$..id", "$.*"}) {
        OracleResult expected = sequential_oracle(query, input, records);
        for (std::size_t threads : {1u, 3u}) {
            SCOPED_TRACE(std::string("query=") + query +
                         " threads=" + std::to_string(threads));
            CollectingStreamSink sink;
            StreamResult result = run_stream(query, input, sink, threads);
            EXPECT_TRUE(result.ok());
            EXPECT_EQ(sink.matches(), expected.matches);
        }
    }
}

// ------------------------------------------------------- from_file / mmap

PaddedString roundtrip_through_file(const std::string& content)
{
    std::filesystem::path path =
        std::filesystem::temp_directory_path() /
        ("descend_stream_test_" + std::to_string(content.size()) + ".json");
    {
        std::ofstream out(path, std::ios::binary);
        out.write(content.data(),
                  static_cast<std::streamsize>(content.size()));
    }
    PaddedString loaded = PaddedString::from_file(path.string());
    std::filesystem::remove(path);
    return loaded;
}

TEST(PaddedStringFromFile, SmallFileReadPath)
{
    std::string content = "{\"a\":[1,2,3]}";
    PaddedString loaded = roundtrip_through_file(content);
    EXPECT_EQ(loaded.view(), content);
    DescendEngine engine = DescendEngine::for_query("$.a[*]");
    EXPECT_EQ(engine.count_checked(loaded).count, 3u);
}

TEST(PaddedStringFromFile, LargeFileMmapPath)
{
    // Above PaddedString::kMmapThreshold, with a size that is not a page
    // multiple, so the copy-on-write padding of the final partial page is
    // exercised.
    std::string content = workloads::generate("twitter", 5 << 20);
    content.resize(content.size() - content.size() % 4096 + 123);
    ASSERT_GT(content.size(), PaddedString::kMmapThreshold);
    // Keep it valid JSON regardless of where the resize cut: overwrite the
    // tail with spaces and close nothing — instead just compare bytes and
    // run the splitter-level machinery that only needs readable padding.
    PaddedString loaded = roundtrip_through_file(content);
    ASSERT_EQ(loaded.size(), content.size());
    EXPECT_EQ(loaded.view(), content);
    // The padding contract: kPadding bytes past the end must be readable
    // whitespace for an owning PaddedString.
    for (std::size_t i = 0; i < PaddedString::kPadding; ++i) {
        EXPECT_EQ(loaded.data()[loaded.size() + i], ' ');
    }
}

TEST(PaddedStringFromFile, LargeFileRunsThroughEngine)
{
    std::string content = workloads::generate("bestbuy", 5 << 20);
    ASSERT_GT(content.size(), PaddedString::kMmapThreshold);
    PaddedString loaded = roundtrip_through_file(content);
    DescendEngine engine = DescendEngine::for_query("$..productId");
    CountResult mapped = engine.count_checked(loaded);
    CountResult heap = engine.count_checked(PaddedString(content));
    EXPECT_EQ(mapped.status, heap.status);
    EXPECT_EQ(mapped.count, heap.count);
}

/** Scoped DESCEND_MMAP_THRESHOLD override (restored on destruction). */
class MmapThresholdOverride {
public:
    explicit MmapThresholdOverride(const char* value)
    {
        ::setenv("DESCEND_MMAP_THRESHOLD", value, 1);
    }
    ~MmapThresholdOverride() { ::unsetenv("DESCEND_MMAP_THRESHOLD"); }
};

TEST(PaddedStringFromFile, ThresholdEnvOverrideParsesStrictly)
{
    EXPECT_EQ(PaddedString::mmap_threshold(), PaddedString::kMmapThreshold);
    {
        MmapThresholdOverride override_guard("12345");
        EXPECT_EQ(PaddedString::mmap_threshold(), 12345u);
    }
    {
        // Trailing junk and non-numbers fall back to the default.
        MmapThresholdOverride override_guard("12x");
        EXPECT_EQ(PaddedString::mmap_threshold(),
                  PaddedString::kMmapThreshold);
    }
    EXPECT_EQ(PaddedString::mmap_threshold(), PaddedString::kMmapThreshold);
}

TEST(PaddedStringFromFile, ZeroLengthFileLoadsEvenWhenMmapIsForced)
{
    // Regression: with the threshold forced to 0 every file qualifies for
    // the mmap fast path, but mmap of length 0 is EINVAL — a zero-length
    // file must be routed down the portable path up front, not rescued by
    // the mmap-failure fallback.
    MmapThresholdOverride override_guard("0");
    PaddedString loaded = roundtrip_through_file("");
    EXPECT_EQ(loaded.size(), 0u);
    EXPECT_TRUE(loaded.empty());
    ASSERT_NE(loaded.data(), nullptr);
    for (std::size_t i = 0; i < PaddedString::kPadding; ++i) {
        EXPECT_EQ(loaded.data()[i], ' ');
    }
    // An engine run over the empty document reports kEmptyDocument, the
    // same as an empty heap-backed PaddedString.
    DescendEngine engine = DescendEngine::for_query("$..a");
    CountResult from_disk = engine.count_checked(loaded);
    CountResult from_heap = engine.count_checked(PaddedString(""));
    EXPECT_EQ(from_disk.status, from_heap.status);
    EXPECT_EQ(from_disk.count, from_heap.count);
}

TEST(PaddedStringFromFile, SmallFileTakesMmapPathUnderLoweredThreshold)
{
    // The override steers a tiny fixture down the mmap path: contents,
    // padding, and engine results must be indistinguishable from the
    // portable read.
    std::string content = "{\"a\": [1, 2, 3], \"b\": {\"a\": 4}}";
    MmapThresholdOverride override_guard("1");
    ASSERT_EQ(PaddedString::mmap_threshold(), 1u);
    PaddedString loaded = roundtrip_through_file(content);
    EXPECT_EQ(loaded.view(), content);
    for (std::size_t i = 0; i < PaddedString::kPadding; ++i) {
        EXPECT_EQ(loaded.data()[loaded.size() + i], ' ');
    }
    DescendEngine engine = DescendEngine::for_query("$..a");
    EXPECT_EQ(engine.count_checked(loaded).count, 2u);
}

}  // namespace
}  // namespace descend
