/**
 * @file
 * Adversarial and malformed-input behaviour of all four engines.
 *
 * Every test feeds a damaged (or resource-exhausting) document to the main
 * engine (in several configurations), the surfer and JSONSki baselines,
 * and the DOM oracle, and demands a structured non-ok EngineStatus — never
 * a silently truncated match set, never a crash. Where the detection point
 * is engine-independent the exact code (and sometimes offset) is pinned
 * down; where engines legitimately classify differently (e.g. the DOM's
 * grammar-first view), only non-ok-ness is demanded.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "descend/baselines/dom_engine.h"
#include "descend/baselines/ski_engine.h"
#include "descend/baselines/surfer_engine.h"
#include "descend/descend.h"
#include "descend/engine/validation.h"
#include "descend/util/errors.h"

namespace descend {
namespace {

EngineStatus descend_status(const std::string& query, const std::string& document,
                            EngineOptions options = {})
{
    DescendEngine engine(automaton::CompiledQuery::compile(query), options);
    CountSink sink;
    return engine.run(PaddedString(document), sink);
}

EngineStatus surfer_status(const std::string& query, const std::string& document,
                           EngineLimits limits = {})
{
    SurferEngine engine(automaton::CompiledQuery::compile(query), limits);
    CountSink sink;
    return engine.run(PaddedString(document), sink);
}

EngineStatus dom_status(const std::string& query, const std::string& document,
                        EngineLimits limits = {})
{
    DomEngine engine(query::Query::parse(query), limits);
    CountSink sink;
    return engine.run(PaddedString(document), sink);
}

EngineStatus ski_status(const std::string& query, const std::string& document,
                        EngineLimits limits = {})
{
    SkiEngine engine(query::Query::parse(query), simd::Level::avx2, limits);
    CountSink sink;
    return engine.run(PaddedString(document), sink);
}

/** Main-engine configurations that exercise distinct detection paths. */
std::vector<EngineOptions> descend_configurations()
{
    std::vector<EngineOptions> configurations;
    for (simd::Level level :
         {simd::Level::avx512, simd::Level::avx2, simd::Level::scalar}) {
        EngineOptions defaults;
        defaults.simd = level;
        configurations.push_back(defaults);
        EngineOptions no_skips;
        no_skips.simd = level;
        no_skips.leaf_skipping = false;
        no_skips.child_skipping = false;
        no_skips.sibling_skipping = false;
        no_skips.head_skipping = false;
        configurations.push_back(no_skips);
        EngineOptions within;
        within.simd = level;
        within.label_within_skipping = true;
        configurations.push_back(within);
    }
    return configurations;
}

/**
 * Asserts the full cross-engine contract for a damaged document: every
 * engine and every main-engine configuration reports a non-ok status.
 * @param ski_query a child-only query for the JSONSki baseline (it rejects
 *        descendants at construction).
 */
void expect_all_engines_reject(const std::string& query,
                               const std::string& ski_query,
                               const std::string& document)
{
    SCOPED_TRACE("document: " + document);
    for (const EngineOptions& options : descend_configurations()) {
        EngineStatus status = descend_status(query, document, options);
        EXPECT_FALSE(status.ok()) << "descend accepted damaged input";
    }
    EXPECT_FALSE(surfer_status(query, document).ok())
        << "surfer accepted damaged input";
    EXPECT_FALSE(dom_status(query, document).ok()) << "dom accepted damaged input";
    EXPECT_FALSE(ski_status(ski_query, document).ok())
        << "jsonski accepted damaged input";
}

TEST(Malformed, StrayCloserAtRoot)
{
    // The document is nothing but a stray closer.
    for (const std::string& document : {std::string("}"), std::string("]")}) {
        expect_all_engines_reject("$..a", "$.a", document);
    }
    // The event-driven engines pin down the exact offset (a `$.a` query
    // avoids head-skip mode, whose validator reports end-of-input offsets).
    EXPECT_EQ(descend_status("$.a", "}"),
              (EngineStatus{StatusCode::kUnbalancedStructure, 0}));
    EXPECT_EQ(surfer_status("$..a", "]"),
              (EngineStatus{StatusCode::kUnbalancedStructure, 0}));
}

TEST(Malformed, CloserAfterRoot)
{
    expect_all_engines_reject("$..a", "$.a", "{\"a\": 1}}");
    expect_all_engines_reject("$..a", "$.a", "[1, 2]]");
}

TEST(Malformed, MismatchedCloserKind)
{
    // An array closed by '}'.
    std::string document = "{\"a\": [1, 2}}";
    expect_all_engines_reject("$..a", "$.a", document);
    EXPECT_EQ(descend_status("$..a", document),
              (EngineStatus{StatusCode::kUnbalancedStructure, 11}));
    EXPECT_EQ(surfer_status("$..a", document),
              (EngineStatus{StatusCode::kUnbalancedStructure, 11}));
}

TEST(Malformed, StrayCloserInsideSkippedRegion)
{
    // The '}' inside the array is invisible to a kind-filtered array skip:
    // only the whole-document balance validator can see it. This is the
    // motivating case for StructuralValidator (engine/validation.h).
    expect_all_engines_reject("$..b", "$.b", "{\"a\": [}]}");
    EXPECT_EQ(ski_status("$.b", "{\"a\": [}]}").code,
              StatusCode::kUnbalancedStructure);
}

TEST(Malformed, InputEndsInsideContainers)
{
    expect_all_engines_reject("$..a", "$.a", "{\"a\": [1, 2");
    expect_all_engines_reject("$..a", "$.a", "[[[");
    EXPECT_EQ(descend_status("$..a", "{\"a\": [1, 2").code,
              StatusCode::kUnbalancedStructure);
}

TEST(Malformed, UnterminatedString)
{
    std::string document = "{\"a\": \"unterminated";
    expect_all_engines_reject("$..a", "$.a", document);
    EXPECT_EQ(descend_status("$..a", document).code, StatusCode::kTruncatedString);
    EXPECT_EQ(surfer_status("$..a", document).code, StatusCode::kTruncatedString);
    EXPECT_EQ(dom_status("$..a", document).code, StatusCode::kTruncatedString);
    EXPECT_EQ(ski_status("$.a", document).code, StatusCode::kTruncatedString);
}

TEST(Malformed, LoneBackslashAtEndOfInput)
{
    // The escape consumes the (absent) next byte, so the string never
    // closes — even though the document's last byte is a quote.
    std::string document = "{\"a\": \"x\\";
    expect_all_engines_reject("$..a", "$.a", document);
    EXPECT_EQ(descend_status("$..a", document).code, StatusCode::kTruncatedString);
    EXPECT_EQ(surfer_status("$..a", document).code, StatusCode::kTruncatedString);

    std::string quote_escaped = "{\"a\": \"x\\\"";
    expect_all_engines_reject("$..a", "$.a", quote_escaped);
    EXPECT_EQ(descend_status("$..a", quote_escaped).code,
              StatusCode::kTruncatedString);
}

TEST(Malformed, EmptyAndWhitespaceOnlyInput)
{
    for (const std::string& document :
         {std::string(""), std::string("   "), std::string("\n\t \r\n")}) {
        expect_all_engines_reject("$..a", "$.a", document);
        EXPECT_EQ(descend_status("$..a", document).code,
                  StatusCode::kEmptyDocument);
        EXPECT_EQ(surfer_status("$..a", document).code,
                  StatusCode::kEmptyDocument);
        EXPECT_EQ(dom_status("$..a", document).code, StatusCode::kEmptyDocument);
        EXPECT_EQ(ski_status("$.a", document).code, StatusCode::kEmptyDocument);
    }
}

TEST(Malformed, ByteOrderMarkPrefix)
{
    std::string document = "\xEF\xBB\xBF{\"a\": 1}";
    expect_all_engines_reject("$..a", "$.a", document);
    EXPECT_EQ(descend_status("$..a", document),
              (EngineStatus{StatusCode::kInvalidDocument, 0}));
    EXPECT_EQ(dom_status("$..a", document),
              (EngineStatus{StatusCode::kInvalidDocument, 0}));
}

TEST(Malformed, InvalidUtf8InLabel)
{
    // 0xFF can never appear in UTF-8; 0xC3 unfollowed is truncated.
    std::string document = "{\"\xFF\xFE\": {\"b\": 1}}";
    // Head-skip mode jumps straight to "b" occurrences and never inspects
    // the damaged label, so pin the event-driven path explicitly.
    EngineOptions no_head;
    no_head.head_skipping = false;
    EXPECT_EQ(descend_status("$..b", document, no_head).code,
              StatusCode::kInvalidUtf8InLabel);
    EXPECT_EQ(surfer_status("$..b", document).code,
              StatusCode::kInvalidUtf8InLabel);
    EXPECT_EQ(dom_status("$..b", document).code, StatusCode::kInvalidUtf8InLabel);
    EXPECT_EQ(ski_status("$.a", document).code, StatusCode::kInvalidUtf8InLabel);

    // Valid multi-byte labels must pass.
    std::string valid = "{\"caf\xC3\xA9\": 1}";
    EXPECT_TRUE(descend_status("$..x", valid).ok());
    EXPECT_TRUE(dom_status("$..x", valid).ok());
}

TEST(Limits, DeepNestingHitsDepthLimit)
{
    // 10k-deep nesting exceeds the default 1024 limit in every engine —
    // previously a recipe for unbounded stack growth. Object nesting keyed
    // on the queried label makes even the head-skip path descend.
    std::string document;
    for (int i = 0; i < 10000; ++i) document += "{\"a\":";
    document += "1";
    document.append(10000, '}');
    expect_all_engines_reject("$..a", "$.a", document);
    EXPECT_EQ(descend_status("$..a", document).code, StatusCode::kDepthLimit);
    EXPECT_EQ(surfer_status("$..a", document).code, StatusCode::kDepthLimit);
    EXPECT_EQ(dom_status("$..a", document).code, StatusCode::kDepthLimit);
    EXPECT_EQ(ski_status("$.a", document).code, StatusCode::kDepthLimit);
}

TEST(Limits, ConfigurableDepthLimit)
{
    // 6 levels of nesting, keyed on the queried label so every engine
    // configuration (including head-skip subruns) traverses the depth.
    std::string document = "{\"a\":{\"a\":{\"a\":{\"a\":{\"a\":{\"a\":1}}}}}}";
    EngineLimits limits;
    limits.max_depth = 4;
    EngineOptions options;
    options.limits = limits;
    EXPECT_EQ(descend_status("$..a", document, options).code,
              StatusCode::kDepthLimit);
    EXPECT_EQ(surfer_status("$..a", document, limits).code,
              StatusCode::kDepthLimit);
    EXPECT_EQ(dom_status("$..a", document, limits).code, StatusCode::kDepthLimit);
    EXPECT_EQ(ski_status("$.a", document, limits).code, StatusCode::kDepthLimit);

    // At exactly the limit every engine still accepts.
    limits.max_depth = 6;
    options.limits = limits;
    EXPECT_TRUE(descend_status("$..a", document, options).ok());
    EXPECT_TRUE(surfer_status("$..a", document, limits).ok());
    EXPECT_TRUE(dom_status("$..a", document, limits).ok());
    EXPECT_TRUE(ski_status("$.a", document, limits).ok());
}

TEST(Limits, DocumentSizeLimit)
{
    std::string document = "{\"a\": [1, 2, 3, 4, 5, 6, 7, 8]}";
    EngineLimits limits;
    limits.max_document_size = 16;
    EngineOptions options;
    options.limits = limits;
    EXPECT_EQ(descend_status("$..a", document, options).code,
              StatusCode::kSizeLimit);
    EXPECT_EQ(surfer_status("$..a", document, limits).code, StatusCode::kSizeLimit);
    EXPECT_EQ(dom_status("$..a", document, limits).code, StatusCode::kSizeLimit);
    EXPECT_EQ(ski_status("$.a", document, limits).code, StatusCode::kSizeLimit);
}

TEST(Limits, MatchCountLimit)
{
    std::string document = "[1, 2, 3, 4, 5]";
    EngineLimits limits;
    limits.max_match_count = 2;
    EngineOptions options;
    options.limits = limits;
    EXPECT_EQ(descend_status("$.*", document, options).code,
              StatusCode::kMatchLimit);
    EXPECT_EQ(surfer_status("$.*", document, limits).code, StatusCode::kMatchLimit);
    EXPECT_EQ(dom_status("$.*", document, limits).code, StatusCode::kMatchLimit);
    EXPECT_EQ(ski_status("$.*", document, limits).code, StatusCode::kMatchLimit);

    limits.max_match_count = 5;
    options.limits = limits;
    EXPECT_TRUE(descend_status("$.*", document, options).ok());
    EXPECT_TRUE(surfer_status("$.*", document, limits).ok());
}

TEST(Limits, StatusOffsetsAlignAcrossEngines)
{
    // The alignment contract: tightening one knob just below a valid
    // document's needs yields the IDENTICAL {code, offset} from the main
    // engine (every configuration), surfer, JSONSki and the DOM oracle.
    //
    // Depth: the first opener that reaches the forbidden depth. "a" keys
    // the nesting so head-skip subruns traverse it too.
    std::string deep = R"({"a": {"a": {"a": 1}}})";
    EngineLimits limits;
    limits.max_depth = 2;
    EngineStatus expected{StatusCode::kDepthLimit, 12};  // third '{'
    EXPECT_EQ(surfer_status("$..a", deep, limits), expected);
    EXPECT_EQ(dom_status("$..a", deep, limits), expected);
    EXPECT_EQ(ski_status("$.a.a.a", deep, limits), expected);
    for (const EngineOptions& base : descend_configurations()) {
        EngineOptions options = base;
        options.limits = limits;
        // Head-skip subruns measure depth relative to the matched label's
        // element, so the absolute-depth expectation is exempt there.
        if (options.head_skipping) {
            continue;
        }
        EXPECT_EQ(descend_status("$..a", deep, options), expected);
    }

    // Match count: the offset of the first match past the budget.
    std::string list = "[1, 22, 333]";
    limits = {};
    limits.max_match_count = 2;
    EngineStatus third_match{StatusCode::kMatchLimit, 8};
    EXPECT_EQ(surfer_status("$.*", list, limits), third_match);
    EXPECT_EQ(dom_status("$.*", list, limits), third_match);
    EXPECT_EQ(ski_status("$.*", list, limits), third_match);
    for (const EngineOptions& base : descend_configurations()) {
        EngineOptions options = base;
        options.limits = limits;
        EXPECT_EQ(descend_status("$.*", list, options), third_match);
    }

    // Size: the shared preflight reports the limit itself as the offset.
    limits = {};
    limits.max_document_size = list.size() - 1;
    EngineStatus too_big{StatusCode::kSizeLimit, limits.max_document_size};
    EXPECT_EQ(surfer_status("$.*", list, limits), too_big);
    EXPECT_EQ(dom_status("$.*", list, limits), too_big);
    EXPECT_EQ(ski_status("$.*", list, limits), too_big);
    for (const EngineOptions& base : descend_configurations()) {
        EngineOptions options = base;
        options.limits = limits;
        EXPECT_EQ(descend_status("$.*", list, options), too_big);
    }
}

TEST(Limits, DepthLimitSeesThroughSkippedMixedBracketKinds)
{
    // Regression: skip_until_depth_zero used to count only the skipped
    // element's own bracket kind, so nesting of the OTHER kind inside a
    // skipped subtree was invisible to the depth limit — the same-kind
    // trick (§4.3) is sound for finding the matching closer but not for
    // absolute depth accounting. Here $.b child-skips the "a" object whose
    // payload nests arrays five deep.
    std::string document = R"({"a": {"x": [[[[1]]]]}, "b": 2})";
    EngineLimits limits;
    limits.max_depth = 4;
    EngineOptions options;  // defaults: child skipping on
    options.limits = limits;
    EXPECT_EQ(descend_status("$.b", document, options).code,
              StatusCode::kDepthLimit);
    // And the aligned offset, against the engines that walk everything:
    // the fourth-level opener (the '[' at byte 15 is depth 4... the first
    // opener to EXCEED the limit is the '[' reaching depth 5).
    EngineStatus expected = dom_status("$.b", document, limits);
    EXPECT_EQ(expected.code, StatusCode::kDepthLimit);
    EXPECT_EQ(surfer_status("$.b", document, limits), expected);
    for (const EngineOptions& base : descend_configurations()) {
        EngineOptions configured = base;
        configured.limits = limits;
        EXPECT_EQ(descend_status("$.b", document, configured), expected);
    }
    // A limit the document fits under stays clean — the skip still
    // terminates correctly on the same-kind closer.
    limits.max_depth = 8;
    options.limits = limits;
    EXPECT_TRUE(descend_status("$.b", document, options).ok());
    EXPECT_EQ(descend_status("$.b", document, options), EngineStatus{});
}

TEST(Malformed, RaiseStatusBridgesToExceptions)
{
    raise_status({});  // ok: no-op
    EXPECT_THROW(raise_status({StatusCode::kDepthLimit, 12}), ResourceLimitError);
    EXPECT_THROW(raise_status({StatusCode::kMatchLimit, 3}), ResourceLimitError);
    EXPECT_THROW(raise_status({StatusCode::kUnbalancedStructure, 7}),
                 DocumentError);
    try {
        raise_status({StatusCode::kTruncatedString, 41});
        FAIL() << "raise_status did not throw";
    } catch (const DocumentError& error) {
        EXPECT_EQ(error.status().code, StatusCode::kTruncatedString);
        EXPECT_EQ(error.status().offset, 41u);
    }
}

TEST(Malformed, TrailingContentAfterRoot)
{
    // `$.a` keeps the main engine on the event-driven path: head-skip mode
    // never observes the root element, so it cannot flag trailing content
    // (documented limitation — the balance validator sees nothing wrong
    // with `{"a": 1} true`).
    std::string document = "{\"a\": 1} true";
    EXPECT_EQ(descend_status("$.a", document).code, StatusCode::kTrailingContent);
    EXPECT_EQ(surfer_status("$..a", document).code, StatusCode::kTrailingContent);
    EXPECT_EQ(dom_status("$..a", document).code, StatusCode::kTrailingContent);
    EXPECT_EQ(ski_status("$.a", document).code, StatusCode::kTrailingContent);
}

/**
 * Regression guard for the padded-string contract: damage parked exactly at
 * SIMD block boundaries (the classifiers' resume points) must still be
 * detected, and well-formed documents of block-straddling sizes must pass.
 */
TEST(PaddedStringBoundary, BlockAlignedTruncation)
{
    // Build a valid document, then make its *total size* land exactly on
    // 64/128/192-byte boundaries by padding a string value, and truncate
    // at each boundary.
    for (std::size_t target : {64u, 128u, 192u}) {
        std::string prefix = "{\"k\": \"";
        std::string suffix = "\"}";
        std::string filler(target - prefix.size() - suffix.size(), 'x');
        std::string document = prefix + filler + suffix;
        ASSERT_EQ(document.size(), target);
        EXPECT_TRUE(descend_status("$..k", document).ok()) << target;
        EXPECT_TRUE(ski_status("$.k", document).ok()) << target;

        // Truncating inside the string, exactly at the previous block
        // boundary, must be flagged by every engine.
        std::string truncated = document.substr(0, target - suffix.size());
        expect_all_engines_reject("$..k", "$.k", truncated);
        EXPECT_EQ(descend_status("$..k", truncated).code,
                  StatusCode::kTruncatedString);
    }
}

TEST(PaddedStringBoundary, PaddingIsInert)
{
    // A document whose final byte is the root closer, at every size in a
    // two-block window: the padding past size() must never produce events
    // or matches.
    for (std::size_t extra = 0; extra < 130; ++extra) {
        std::string document = "{\"pad\": \"" + std::string(extra, 'y') + "\"}";
        DescendEngine engine(automaton::CompiledQuery::compile("$..pad"));
        OffsetSink sink;
        EngineStatus status = engine.run(PaddedString(document), sink);
        ASSERT_TRUE(status.ok()) << "size " << document.size();
        ASSERT_EQ(sink.offsets().size(), 1u) << "size " << document.size();
    }
}

TEST(Validation, PreflightClassification)
{
    EngineLimits limits;
    EXPECT_EQ(preflight_document(PaddedString(""), limits).code,
              StatusCode::kEmptyDocument);
    EXPECT_EQ(preflight_document(PaddedString("  "), limits).code,
              StatusCode::kEmptyDocument);
    EXPECT_EQ(preflight_document(PaddedString("\xEF\xBB\xBF{}"), limits).code,
              StatusCode::kInvalidDocument);
    EXPECT_TRUE(preflight_document(PaddedString("{}"), limits).ok());
    limits.max_document_size = 1;
    EXPECT_EQ(preflight_document(PaddedString("{}"), limits).code,
              StatusCode::kSizeLimit);
}

}  // namespace
}  // namespace descend
