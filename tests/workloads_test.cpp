/**
 * @file
 * Workload generator tests: every dataset parses as valid JSON, hits its
 * size target, reproduces its structural profile (Table 3 shape), and
 * gives its benchmark queries sensible selectivity. Engine counts on the
 * generated data are cross-checked against the DOM oracle — a small-scale
 * rehearsal of the benchmark preflight.
 */
#include <gtest/gtest.h>

#include <string>

#include "descend/baselines/dom_engine.h"
#include "descend/descend.h"
#include "descend/json/dom.h"
#include "descend/workloads/datasets.h"
#include "descend/workloads/stats.h"

namespace descend {
namespace {

constexpr std::size_t kTestTarget = 200 * 1024;

class DatasetTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetTest, GeneratesValidJsonOfRequestedSize)
{
    std::string text = workloads::generate(GetParam(), kTestTarget);
    EXPECT_GE(text.size(), kTestTarget / 2);
    EXPECT_LT(text.size(), kTestTarget * 4);
    json::ParseOptions options;
    options.max_depth = 8192;
    EXPECT_NO_THROW(json::parse(text, options));
}

TEST_P(DatasetTest, Deterministic)
{
    std::string first = workloads::generate(GetParam(), 16 * 1024);
    std::string second = workloads::generate(GetParam(), 16 * 1024);
    EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetTest,
                         ::testing::ValuesIn(workloads::dataset_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                             return info.param;
                         });

TEST(DatasetProfiles, AstIsDeepAndDense)
{
    std::string text = workloads::generate_ast(512 * 1024);
    auto stats = workloads::compute_stats(text);
    EXPECT_GE(stats.depth, 40u);
    EXPECT_LT(stats.verbosity, 25.0);
}

TEST(DatasetProfiles, WalmartIsShallowAndVerbose)
{
    auto stats = workloads::compute_stats(workloads::generate_walmart(256 * 1024));
    EXPECT_LE(stats.depth, 6u);
    EXPECT_GT(stats.verbosity, 45.0);
}

TEST(DatasetProfiles, RelativeVerbosityOrdering)
{
    // Table 3's ordering: NSPL and AST dense, Walmart verbose.
    auto nspl = workloads::compute_stats(workloads::generate_nspl(256 * 1024));
    auto walmart = workloads::compute_stats(workloads::generate_walmart(256 * 1024));
    auto bestbuy = workloads::compute_stats(workloads::generate_bestbuy(256 * 1024));
    EXPECT_LT(nspl.verbosity, bestbuy.verbosity);
    EXPECT_LT(bestbuy.verbosity, walmart.verbosity);
}

struct QueryExpectation {
    const char* dataset;
    const char* query;
    bool expect_matches;
};

TEST(DatasetQueries, BenchmarkQueriesHaveExpectedSelectivity)
{
    const QueryExpectation expectations[] = {
        {"bestbuy", "$.products.*.categoryPath.*.id", true},
        {"bestbuy", "$.products.*.videoChapters.*.chapter", true},
        {"bestbuy", "$..categoryPath..id", true},
        {"googlemap", "$.*.routes.*.legs.*.steps.*.distance.text", true},
        {"nspl", "$.meta.view.columns.*.name", true},
        {"nspl", "$.data.*.*.*", true},
        {"twitter", "$.*.text", true},
        {"twitter", "$.*.entities.urls.*.url", true},
        {"walmart", "$.items.*.name", true},
        {"walmart", "$..bestMarketplacePrice.price", true},
        {"crossref", "$..DOI", true},
        {"crossref", "$.items.*.author.*.affiliation.*.name", true},
        {"ast", "$..inner..inner..type.qualType", true},
        {"twitter_small", "$.search_metadata.count", true},
        {"twitter_small", "$..count", true},
    };
    for (const auto& expectation : expectations) {
        SCOPED_TRACE(std::string(expectation.dataset) + " " + expectation.query);
        std::string text = workloads::generate(expectation.dataset, kTestTarget);
        PaddedString padded(text);
        auto engine = DescendEngine::for_query(expectation.query);
        std::size_t count = engine.count(padded);
        if (expectation.expect_matches) {
            EXPECT_GT(count, 0u);
        }
        // Cross-check against the oracle (benchmark preflight rehearsal).
        json::ParseOptions options;
        options.max_depth = 8192;
        json::Document dom = json::parse(text, options);
        DomEngine oracle(query::Query::parse(expectation.query));
        CountSink oracle_count;
        oracle.evaluate(dom.root(), oracle_count);
        EXPECT_EQ(count, oracle_count.count());
    }
}

TEST(DatasetQueries, RareFeaturesNeedLargerScale)
{
    // Rare members (editor, videoChapters, vitamins_tags...) appear at
    // realistic rates: on multi-MB generations they must show up.
    std::string bestbuy = workloads::generate_bestbuy(4 * 1024 * 1024);
    PaddedString padded(bestbuy);
    EXPECT_GT(DescendEngine::for_query("$..videoChapters").count(padded), 0u);

    std::string crossref = workloads::generate_crossref(6 * 1024 * 1024);
    PaddedString crossref_padded(crossref);
    EXPECT_GT(DescendEngine::for_query("$..editor").count(crossref_padded), 0u);
    // References carry many more author nodes than items (C2's hazard).
    auto authors = DescendEngine::for_query("$..author").count(crossref_padded);
    auto item_authors =
        DescendEngine::for_query("$.items.*.author").count(crossref_padded);
    EXPECT_GT(authors, item_authors * 5);
}

TEST(DatasetQueries, TwitterSmallMetadataIsTrailing)
{
    std::string text = workloads::generate_twitter_small(128 * 1024);
    std::size_t statuses = text.find("\"statuses\"");
    std::size_t metadata = text.find("\"search_metadata\"");
    ASSERT_NE(statuses, std::string::npos);
    ASSERT_NE(metadata, std::string::npos);
    EXPECT_LT(statuses, metadata);
}

TEST(DatasetStats, FormattingIsStable)
{
    workloads::DatasetStats stats;
    stats.size_bytes = 25600000;
    stats.nodes = 1790000;
    stats.depth = 102;
    stats.verbosity = 14.3;
    std::string row = workloads::format_stats_row("ast", stats);
    EXPECT_NE(row.find("ast"), std::string::npos);
    EXPECT_NE(row.find("102"), std::string::npos);
}

}  // namespace
}  // namespace descend
