/**
 * @file
 * Sanity checks over the benchmark catalog: ids are unique, every query
 * parses and compiles, dataset names are valid, the ski_supported flag
 * matches the JSONSki fragment, and rewritings reference existing
 * originals and agree with them on small-scale generated data.
 */
#include <gtest/gtest.h>

#include <set>

#include "bench/catalog.h"
#include "descend/baselines/ski_engine.h"
#include "descend/descend.h"
#include "descend/workloads/datasets.h"

namespace descend {
namespace {

TEST(Catalog, IdsAreUnique)
{
    std::set<std::string> ids;
    for (const bench::QuerySpec& spec : bench::catalog()) {
        EXPECT_TRUE(ids.insert(spec.id).second) << "duplicate id " << spec.id;
    }
}

TEST(Catalog, QueriesCompile)
{
    for (const bench::QuerySpec& spec : bench::catalog()) {
        EXPECT_NO_THROW(automaton::CompiledQuery::compile(spec.query)) << spec.id;
    }
}

TEST(Catalog, DatasetNamesExist)
{
    auto names = workloads::dataset_names();
    std::set<std::string> valid(names.begin(), names.end());
    for (const bench::QuerySpec& spec : bench::catalog()) {
        EXPECT_TRUE(valid.count(spec.dataset)) << spec.id << ": " << spec.dataset;
    }
}

TEST(Catalog, SkiSupportMatchesFragment)
{
    for (const bench::QuerySpec& spec : bench::catalog()) {
        bool has_descendants = query::Query::parse(spec.query).has_descendants();
        EXPECT_EQ(spec.ski_supported, !has_descendants) << spec.id;
        if (spec.ski_supported) {
            EXPECT_NO_THROW(SkiEngine::for_query(spec.query)) << spec.id;
        }
    }
}

TEST(Catalog, RewritesReferenceOriginalsAndAgree)
{
    for (const bench::QuerySpec& spec : bench::catalog()) {
        if (spec.rewrite_of.empty()) {
            continue;
        }
        auto originals = bench::catalog_subset({spec.rewrite_of});
        ASSERT_EQ(originals.size(), 1u) << spec.id << " references "
                                        << spec.rewrite_of;
        const bench::QuerySpec& original = originals.front();
        EXPECT_EQ(original.dataset, spec.dataset) << spec.id;
        // Semantic equivalence on this dataset: the rewriting must select
        // the same number of nodes (small scale keeps the test fast).
        PaddedString doc(workloads::generate(spec.dataset, 96 * 1024));
        std::size_t original_count =
            DescendEngine::for_query(original.query).count(doc);
        std::size_t rewrite_count =
            DescendEngine::for_query(spec.query).count(doc);
        EXPECT_EQ(original_count, rewrite_count)
            << spec.id << " vs " << original.id;
    }
}

TEST(Catalog, SubsetPreservesOrder)
{
    auto subset = bench::catalog_subset({"W1", "B1", "missing", "A1"});
    ASSERT_EQ(subset.size(), 3u);
    EXPECT_EQ(subset[0].id, "W1");
    EXPECT_EQ(subset[1].id, "B1");
    EXPECT_EQ(subset[2].id, "A1");
}

}  // namespace
}  // namespace descend
