/**
 * @file
 * Tests for the classification layer: the generic acceptance-group table
 * construction of Section 4.1 (including the exact table constants printed
 * in the paper), the quote classifier against a naive reference, comma /
 * colon toggling, and the depth classifier with its block-skip heuristic.
 */
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>

#include "descend/classify/depth_classifier.h"
#include "descend/classify/quote_classifier.h"
#include "descend/classify/raw_tables.h"
#include "descend/classify/structural_classifier.h"
#include "descend/workloads/builder.h"

namespace descend::classify {
namespace {

using Block = std::array<std::uint8_t, simd::kBlockSize>;

Block block_from(const std::string& text)
{
    Block block;
    std::memset(block.data(), ' ', block.size());
    std::memcpy(block.data(), text.data(), std::min(text.size(), block.size()));
    return block;
}

std::uint64_t naive_classify(const ByteSet& accept, const Block& block)
{
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < block.size(); ++i) {
        mask |= static_cast<std::uint64_t>(accept[block[i]]) << i;
    }
    return mask;
}

// ---------------------------------------------------------------- Section 4.1

TEST(RawTables, PaperExampleGroups)
{
    // The worked example from Section 4.1: bytes a1,a2,b1,b2,c2 accepted.
    ByteSet accept = byte_set({0xa1, 0xa2, 0xb1, 0xb2, 0xc2});
    auto groups = acceptance_groups(accept);
    ASSERT_EQ(groups.size(), 2u);
    // <{a,b}, {1,2}> and <{c}, {2}> — overlapping (share lower nibble 2).
    EXPECT_EQ(groups[0].uppers, (1u << 0xa) | (1u << 0xb));
    EXPECT_EQ(groups[0].lowers, (1u << 1) | (1u << 2));
    EXPECT_EQ(groups[1].uppers, 1u << 0xc);
    EXPECT_EQ(groups[1].lowers, 1u << 2);
    EXPECT_TRUE(has_overlapping_groups(groups));
    // Overlap means the eq method is inapplicable...
    EXPECT_FALSE(build_eq_tables(accept).has_value());
    // ...but the few-groups method handles it, with the lower-nibble mask
    // required by the high bytes (footnote 2).
    auto classifier = RawClassifier::build(accept);
    EXPECT_EQ(classifier.method(), Method::kOr8);
    EXPECT_TRUE(classifier.masked());
    workloads::Rng rng(5);
    for (int trial = 0; trial < 100; ++trial) {
        Block block;
        for (auto& c : block) {
            c = static_cast<std::uint8_t>(rng.next() & 0xff);
        }
        ASSERT_EQ(classifier.run(simd::best_kernels(), block.data()),
                  naive_classify(accept, block));
    }
}

TEST(RawTables, JsonStructuralGroupsMatchPaper)
{
    ByteSet accept =
        byte_set({kOpenBrace, kCloseBrace, kOpenBracket, kCloseBracket, kColon,
                  kComma});
    auto groups = acceptance_groups(accept);
    ASSERT_EQ(groups.size(), 3u);
    // {<{5,7},{b,d}>, <{2},{c}>, <{3},{a}>} in the paper's order.
    EXPECT_EQ(groups[0].uppers, (1u << 5) | (1u << 7));
    EXPECT_EQ(groups[0].lowers, (1u << 0xb) | (1u << 0xd));
    EXPECT_EQ(groups[1].uppers, 1u << 2);
    EXPECT_EQ(groups[1].lowers, 1u << 0xc);
    EXPECT_EQ(groups[2].uppers, 1u << 3);
    EXPECT_EQ(groups[2].lowers, 1u << 0xa);
    EXPECT_FALSE(has_overlapping_groups(groups));
}

TEST(RawTables, JsonStructuralTablesMatchPaperConstants)
{
    // The exact utab / ltab printed in Section 4.1.
    const auto& utab = StructuralClassifier::reference_utab();
    const auto& ltab = StructuralClassifier::reference_ltab();
    std::array<std::uint8_t, 16> expected_utab = {
        0xfe, 0xfe, 0x02, 0x03, 0xfe, 0x01, 0xfe, 0x01,
        0xfe, 0xfe, 0xfe, 0xfe, 0xfe, 0xfe, 0xfe, 0xfe};
    std::array<std::uint8_t, 16> expected_ltab = {
        0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
        0xff, 0xff, 0x03, 0x01, 0x02, 0x01, 0xff, 0xff};
    EXPECT_EQ(utab, expected_utab);
    EXPECT_EQ(ltab, expected_ltab);
}

TEST(RawTables, EveryMethodClassifiesCorrectly)
{
    workloads::Rng rng(21);
    const simd::Kernels& kernels = simd::best_kernels();
    for (int trial = 0; trial < 200; ++trial) {
        // Random predicate over ASCII with varying density.
        ByteSet accept{};
        std::uint64_t density = rng.between(1, 60);
        for (int byte = 0; byte < 0x80; ++byte) {
            accept[byte] = rng.chance(static_cast<unsigned>(density));
        }
        auto classifier = RawClassifier::build(accept);
        for (int b = 0; b < 20; ++b) {
            Block block;
            for (auto& c : block) {
                c = static_cast<std::uint8_t>(rng.next() & 0xff);
            }
            ASSERT_EQ(classifier.run(kernels, block.data()),
                      naive_classify(accept, block))
                << "method " << method_name(classifier.method()) << " trial "
                << trial;
        }
    }
}

TEST(RawTables, ForcedMethodsAgree)
{
    workloads::Rng rng(23);
    const simd::Kernels& kernels = simd::best_kernels();
    // A non-overlapping predicate: eq, or8 and naive must all work.
    ByteSet accept =
        byte_set({kOpenBrace, kCloseBrace, kOpenBracket, kCloseBracket, kColon,
                  kComma});
    for (Method method : {Method::kEq, Method::kOr8, Method::kGeneral,
                          Method::kNaive}) {
        auto classifier = RawClassifier::build_with_method(accept, method);
        ASSERT_TRUE(classifier.has_value()) << method_name(method);
        for (int trial = 0; trial < 50; ++trial) {
            Block block;
            for (auto& c : block) {
                c = static_cast<std::uint8_t>(rng.next() & 0xff);
            }
            ASSERT_EQ(classifier->run(kernels, block.data()),
                      naive_classify(accept, block))
                << method_name(method);
        }
    }
}

TEST(RawTables, HighBytePredicatesUseMaskedLookups)
{
    ByteSet accept = byte_set({0x85, 0x30});
    auto classifier = RawClassifier::build(accept);
    EXPECT_EQ(classifier.method(), Method::kEq);
    EXPECT_TRUE(classifier.masked());
    Block block = block_from("0");
    block[5] = 0x85;
    block[9] = 0x35;  // same nibbles crossed: must not match
    block[10] = 0x80;
    EXPECT_EQ(classifier.run(simd::best_kernels(), block.data()),
              (1ULL << 0) | (1ULL << 5));
    EXPECT_EQ(classifier.run(simd::scalar_kernels(), block.data()),
              (1ULL << 0) | (1ULL << 5));
}

TEST(RawTables, ManyGroupsUseGeneralMethod)
{
    // A predicate engineered to produce > 8 distinct acceptance groups:
    // upper nibble u accepts lower nibbles {0..u}, over the full byte
    // range (Section 4.1's general case, 8 < |G| <= 16).
    ByteSet accept{};
    for (int upper = 0; upper < 12; ++upper) {
        for (int lower = 0; lower <= upper; ++lower) {
            accept[(upper << 4) | lower] = true;
        }
    }
    auto groups = acceptance_groups(accept);
    EXPECT_GT(groups.size(), 8u);
    auto classifier = RawClassifier::build(accept);
    EXPECT_EQ(classifier.method(), Method::kGeneral);
    workloads::Rng rng(29);
    for (int trial = 0; trial < 100; ++trial) {
        Block block;
        for (auto& c : block) {
            c = static_cast<std::uint8_t>(rng.next() & 0xff);
        }
        ASSERT_EQ(classifier.run(simd::best_kernels(), block.data()),
                  naive_classify(accept, block));
        ASSERT_EQ(classifier.run(simd::scalar_kernels(), block.data()),
                  naive_classify(accept, block));
    }
}

// ---------------------------------------------------------------- Section 4.2

struct NaiveQuoteState {
    bool in_string = false;
    bool escaped = false;
};

/** Byte-by-byte reference for in-string classification. */
QuoteMasks naive_quotes(const Block& block, NaiveQuoteState& state)
{
    QuoteMasks masks;
    for (std::size_t i = 0; i < block.size(); ++i) {
        char c = static_cast<char>(block[i]);
        bool was_escaped = state.escaped;
        state.escaped = false;
        if (was_escaped) {
            if (state.in_string) {
                masks.in_string |= 1ULL << i;
            }
            continue;
        }
        if (c == '\\') {
            state.escaped = true;
            if (state.in_string) {
                masks.in_string |= 1ULL << i;
            }
            continue;
        }
        if (c == '"') {
            masks.unescaped_quotes |= 1ULL << i;
            if (!state.in_string) {
                state.in_string = true;
                masks.in_string |= 1ULL << i;  // opening quote is "inside"
            } else {
                state.in_string = false;  // closing quote is "outside"
            }
            continue;
        }
        if (state.in_string) {
            masks.in_string |= 1ULL << i;
        }
    }
    return masks;
}

TEST(QuoteClassifier, MatchesNaiveOnRandomStreams)
{
    workloads::Rng rng(31);
    for (simd::Level level :
         {simd::Level::scalar, simd::Level::avx2, simd::Level::avx512}) {
        QuoteClassifier classifier(simd::kernels_for(level));
        NaiveQuoteState naive_state;
        for (int blocks = 0; blocks < 800; ++blocks) {
            Block block;
            static const char kChars[] = "\"\\x, {}";
            for (auto& c : block) {
                c = static_cast<std::uint8_t>(kChars[rng.below(sizeof(kChars) - 1)]);
            }
            QuoteMasks fast = classifier.classify(block.data());
            QuoteMasks naive = naive_quotes(block, naive_state);
            ASSERT_EQ(fast.unescaped_quotes, naive.unescaped_quotes)
                << "block " << blocks;
            ASSERT_EQ(fast.in_string, naive.in_string) << "block " << blocks;
        }
    }
}

TEST(QuoteClassifier, SimpleStringMask)
{
    QuoteClassifier classifier(simd::best_kernels());
    Block block = block_from(R"({"a": "b,c"})");
    QuoteMasks masks = classifier.classify(block.data());
    // Quotes at 1,3 (label a) and 6,10 (value b,c).
    EXPECT_EQ(masks.unescaped_quotes,
              (1ULL << 1) | (1ULL << 3) | (1ULL << 6) | (1ULL << 10));
    // The comma inside the string (position 8) is in-string.
    EXPECT_TRUE(masks.in_string & (1ULL << 8));
    // The colon (position 4) is not.
    EXPECT_FALSE(masks.in_string & (1ULL << 4));
}

TEST(QuoteClassifier, EscapedQuoteDoesNotClose)
{
    QuoteClassifier classifier(simd::best_kernels());
    Block block = block_from(R"(["a\"b", 1])");
    QuoteMasks masks = classifier.classify(block.data());
    // The escaped quote at position 4 is not an unescaped quote.
    EXPECT_FALSE(masks.unescaped_quotes & (1ULL << 4));
    // The comma at position 7 is outside the string.
    EXPECT_FALSE(masks.in_string & (1ULL << 7));
    // The 'b' at position 5 is inside.
    EXPECT_TRUE(masks.in_string & (1ULL << 5));
}

TEST(QuoteClassifier, StateCrossesBlocks)
{
    QuoteClassifier classifier(simd::best_kernels());
    // Block 1 ends inside a string; block 2 continues it.
    std::string text(simd::kBlockSize - 3, ' ');
    text += "\"ab";  // string opens near the end of block 1
    Block first = block_from(text);
    classifier.classify(first.data());
    EXPECT_NE(classifier.state().in_string_carry, 0u);

    Block second = block_from(R"(cd", 1)");
    QuoteMasks masks = classifier.classify(second.data());
    EXPECT_TRUE(masks.in_string & 1ULL);               // 'c' continues string
    EXPECT_FALSE(masks.in_string & (1ULL << 4));       // ',' after close
    EXPECT_EQ(classifier.state().in_string_carry, 0u);
}

TEST(QuoteClassifier, EscapeCarryCrossesBlocks)
{
    QuoteClassifier classifier(simd::best_kernels());
    std::string text = "\"";
    text += std::string(simd::kBlockSize - 2, 'x');
    text += "\\";  // block ends with a lone backslash inside a string
    Block first = block_from(text);
    classifier.classify(first.data());
    EXPECT_TRUE(classifier.state().escape_carry);

    Block second = block_from(R"(" still in string")");
    QuoteMasks masks = classifier.classify(second.data());
    // The first quote is escaped by the carried backslash.
    EXPECT_FALSE(masks.unescaped_quotes & 1ULL);
    EXPECT_TRUE(masks.in_string & (1ULL << 2));
}

// ------------------------------------------------------- Sections 4.1 + 4.3

TEST(StructuralClassifier, DefaultSkipsCommasAndColons)
{
    StructuralClassifier classifier(simd::best_kernels());
    Block block = block_from(R"({"a": [1, 2], "b": {}})");
    std::uint64_t mask = classifier.classify(block.data());
    // Only braces/brackets: positions 0 '{', 6 '[', 11 ']', 19 '{', 20 '}',
    // 21 '}'. Quote masking is the caller's job; none of these are quoted.
    EXPECT_EQ(mask, (1ULL << 0) | (1ULL << 6) | (1ULL << 11) | (1ULL << 19) |
                        (1ULL << 20) | (1ULL << 21));
}

TEST(StructuralClassifier, TogglingCommasAndColons)
{
    StructuralClassifier classifier(simd::best_kernels());
    Block block = block_from(R"({"a": [1, 2]})");
    std::uint64_t braces = (1ULL << 0) | (1ULL << 6) | (1ULL << 11) | (1ULL << 12);
    EXPECT_EQ(classifier.classify(block.data()), braces);

    EXPECT_TRUE(classifier.set_commas(true));
    EXPECT_FALSE(classifier.set_commas(true));  // idempotent
    EXPECT_EQ(classifier.classify(block.data()), braces | (1ULL << 8));

    EXPECT_TRUE(classifier.set_colons(true));
    EXPECT_EQ(classifier.classify(block.data()),
              braces | (1ULL << 8) | (1ULL << 4));

    EXPECT_TRUE(classifier.set_commas(false));
    EXPECT_EQ(classifier.classify(block.data()), braces | (1ULL << 4));
    EXPECT_TRUE(classifier.set_colons(false));
    EXPECT_EQ(classifier.classify(block.data()), braces);
}

TEST(StructuralClassifier, NoFalsePositivesOnLookalikes)
{
    StructuralClassifier classifier(simd::best_kernels());
    classifier.set_commas(true);
    classifier.set_colons(true);
    // Bytes sharing a nibble with structural characters: ; + K k z < etc.
    Block block = block_from(R"(;+Kkz<=>?@ABZ|~-.)");
    EXPECT_EQ(classifier.classify(block.data()), 0u);
}

// ---------------------------------------------------------------- Section 4.4

TEST(DepthClassifier, MasksSelectKind)
{
    Block block = block_from(R"({[}]{})");
    DepthMasks object_masks =
        depth_masks(simd::best_kernels(), block.data(), BracketKind::kObject);
    EXPECT_EQ(object_masks.openers, (1ULL << 0) | (1ULL << 4));
    EXPECT_EQ(object_masks.closers, (1ULL << 2) | (1ULL << 5));
    DepthMasks array_masks =
        depth_masks(simd::best_kernels(), block.data(), BracketKind::kArray);
    EXPECT_EQ(array_masks.openers, 1ULL << 1);
    EXPECT_EQ(array_masks.closers, 1ULL << 3);
}

TEST(DepthClassifier, FindsMatchingCloser)
{
    Block block = block_from(R"({{}{}}x)");
    DepthMasks masks =
        depth_masks(simd::best_kernels(), block.data(), BracketKind::kObject);
    // Entered after the first '{': relative depth 1; ignore bit 0.
    masks.openers &= ~1ULL;
    int depth = 1;
    int index = find_depth_zero(masks, depth);
    EXPECT_EQ(index, 5);
    EXPECT_EQ(depth, 0);
}

TEST(DepthClassifier, BlockSkipHeuristic)
{
    // Fewer closers in the block than the current depth: the block must be
    // consumed wholesale with only a depth adjustment.
    Block block = block_from(R"({{{}{{)");
    DepthMasks masks =
        depth_masks(simd::best_kernels(), block.data(), BracketKind::kObject);
    int depth = 3;
    int index = find_depth_zero(masks, depth);
    EXPECT_EQ(index, -1);
    EXPECT_EQ(depth, 3 + 5 - 1);
}

TEST(DepthClassifier, DepthNeverFallsOnOpeners)
{
    Block block = block_from(R"(}})");
    DepthMasks masks =
        depth_masks(simd::best_kernels(), block.data(), BracketKind::kObject);
    int depth = 2;
    int index = find_depth_zero(masks, depth);
    EXPECT_EQ(index, 1);
    EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace descend::classify
