/**
 * @file
 * Query automaton tests: NFA construction, determinization, minimization
 * (the Figure 1 / Figure 2 automata), the exponential-blowup family, and
 * every state-property definition of Section 3.3.
 */
#include <gtest/gtest.h>

#include <set>

#include "descend/automaton/compiled.h"
#include "descend/workloads/builder.h"
#include "descend/workloads/random_json.h"
#include "descend/util/errors.h"

namespace descend::automaton {
namespace {

CompiledQuery compile(const char* text)
{
    return CompiledQuery::compile(text);
}

/** Number of non-rejecting states of a compiled query's DFA. */
int live_states(const CompiledQuery& cq)
{
    int live = 0;
    for (int s = 0; s < cq.dfa().num_states(); ++s) {
        if (!cq.flags(s).rejecting) {
            ++live;
        }
    }
    return live;
}

int count_rejecting(const CompiledQuery& cq)
{
    return cq.dfa().num_states() - live_states(cq);
}

TEST(Nfa, StructureFollowsSelectors)
{
    auto query = query::Query::parse("$.a..b.*");
    Nfa nfa = Nfa::from_query(query);
    ASSERT_EQ(nfa.num_states(), 4);
    EXPECT_FALSE(nfa.state(0).recursive);
    EXPECT_TRUE(nfa.state(1).recursive);
    EXPECT_FALSE(nfa.state(2).recursive);
    EXPECT_TRUE(nfa.state(2).wildcard_advance);

    const Alphabet& alphabet = nfa.alphabet();
    EXPECT_EQ(alphabet.num_labels(), 2);
    int a = alphabet.label_symbol("a");
    int b = alphabet.label_symbol("b");
    EXPECT_TRUE(nfa.advances_on(0, a));
    EXPECT_FALSE(nfa.advances_on(0, b));
    EXPECT_FALSE(nfa.advances_on(0, alphabet.other_symbol()));
    EXPECT_TRUE(nfa.advances_on(1, b));
    EXPECT_TRUE(nfa.advances_on(2, alphabet.other_symbol()));
    EXPECT_FALSE(nfa.advances_on(3, b));  // accepting state has no advance
}

TEST(Nfa, RejectsOversizedQueries)
{
    std::string text = "$";
    for (int i = 0; i < 64; ++i) {
        text += ".a";
    }
    EXPECT_THROW(Nfa::from_query(query::Query::parse(text)), LimitError);
}

TEST(Alphabet, InterningAndLookup)
{
    auto cq = compile("$.a..b[3].a[7]");
    const Alphabet& alphabet = cq.alphabet();
    EXPECT_EQ(alphabet.num_labels(), 2);   // a, b (deduplicated)
    EXPECT_EQ(alphabet.num_indices(), 2);  // 3, 7
    EXPECT_EQ(alphabet.total_symbols(), 5);
    EXPECT_EQ(alphabet.label_symbol("a"), 0);
    EXPECT_EQ(alphabet.label_symbol("b"), 1);
    EXPECT_EQ(alphabet.label_symbol("zzz"), alphabet.other_symbol());
    EXPECT_TRUE(alphabet.symbol_is_index(alphabet.index_symbol(3)));
    EXPECT_EQ(alphabet.index_symbol(99), alphabet.other_symbol());
    EXPECT_EQ(alphabet.index(alphabet.index_symbol(7)), 7u);
}

TEST(Dfa, Figure1ChainAutomaton)
{
    // $.a.b.*.c.* — Figure 1: a 6-state chain plus the trash state.
    auto cq = compile("$.a.b.*.c.*");
    EXPECT_EQ(live_states(cq), 6);
    EXPECT_EQ(count_rejecting(cq), 1);

    const Dfa& dfa = cq.dfa();
    const Alphabet& alphabet = dfa.alphabet();
    int a = alphabet.label_symbol("a");
    int b = alphabet.label_symbol("b");
    int c = alphabet.label_symbol("c");
    int other = alphabet.other_symbol();

    int s0 = dfa.initial_state();
    int s1 = dfa.transition(s0, a);
    EXPECT_TRUE(cq.flags(dfa.transition(s0, b)).rejecting);
    EXPECT_TRUE(cq.flags(dfa.transition(s0, other)).rejecting);
    int s2 = dfa.transition(s1, b);
    int s3 = dfa.transition(s2, other);  // wildcard: anything advances
    EXPECT_EQ(dfa.transition(s2, a), s3);
    int s4 = dfa.transition(s3, c);
    EXPECT_TRUE(cq.flags(dfa.transition(s3, other)).rejecting);
    int s5 = dfa.transition(s4, other);
    EXPECT_TRUE(cq.flags(s5).accepting);
    // From the accepting state everything rejects (end of query).
    EXPECT_TRUE(cq.flags(dfa.transition(s5, a)).rejecting);
    std::set<int> distinct{s0, s1, s2, s3, s4, s5};
    EXPECT_EQ(distinct.size(), 6u);
}

TEST(Dfa, Figure2DescendantAutomaton)
{
    // $.a..b.*..c.* — Figure 2 (bottom): the minimal DFA has segments for
    // $.a, ..b.*, ..c.*.
    auto cq = compile("$.a..b.*..c.*");
    const Dfa& dfa = cq.dfa();
    const Alphabet& alphabet = dfa.alphabet();
    int a = alphabet.label_symbol("a");
    int b = alphabet.label_symbol("b");
    int c = alphabet.label_symbol("c");
    int other = alphabet.other_symbol();

    int s0 = dfa.initial_state();
    // Initial segment is deterministic: fallback rejects.
    EXPECT_TRUE(cq.flags(dfa.fallback(s0)).rejecting);
    int s1 = dfa.transition(s0, a);
    EXPECT_FALSE(cq.flags(s1).rejecting);
    // s1 is the entry of the ..b segment: fallback loops.
    EXPECT_EQ(dfa.fallback(s1), s1);
    EXPECT_TRUE(cq.flags(s1).waiting);
    int s2 = dfa.transition(s1, b);
    EXPECT_NE(s2, s1);
    // After b, the wildcard advances into the ..c segment on anything.
    int s3 = dfa.transition(s2, other);
    EXPECT_FALSE(cq.flags(s3).rejecting);
    // Within the ..c segment, finding c then anything accepts.
    int s4 = dfa.transition(s3, c);
    int s5 = dfa.transition(s4, other);
    EXPECT_TRUE(cq.flags(s5).accepting);
    // Figure 2's DFA: the accepting state still tracks the c-segment (the
    // query can keep matching deeper); nothing rejects after the first
    // descendant.
    for (int s = 0; s < dfa.num_states(); ++s) {
        if (cq.flags(s).rejecting) {
            // Only reachable from the first segment.
            EXPECT_TRUE(cq.flags(dfa.transition(s, a)).rejecting);
        }
    }
}

TEST(Dfa, NodeSemanticsLanguage)
{
    // The DFA for $..a..b accepts any label path containing a then b.
    auto cq = compile("$..a..b");
    const Dfa& dfa = cq.dfa();
    const Alphabet& alphabet = dfa.alphabet();
    auto run = [&](std::initializer_list<const char*> labels) {
        int state = dfa.initial_state();
        for (const char* label : labels) {
            state = dfa.transition(state, alphabet.label_symbol(label));
        }
        return dfa.accepting(state);
    };
    EXPECT_TRUE(run({"a", "b"}));
    EXPECT_TRUE(run({"x", "a", "y", "b"}));
    EXPECT_TRUE(run({"a", "a", "b", "b"}));
    EXPECT_FALSE(run({"b", "a"}));
    EXPECT_FALSE(run({"a"}));
    EXPECT_FALSE(run({}));
    EXPECT_TRUE(run({"a", "b", "x"}) == false);  // must end at b
}

TEST(Dfa, ExponentialBlowupFamily)
{
    // $..a.*.*...* reconstructs the classical NFA->DFA blowup (Sec. 3.1).
    std::vector<int> sizes;
    for (int wildcards = 1; wildcards <= 6; ++wildcards) {
        std::string text = "$..a";
        for (int w = 0; w < wildcards; ++w) {
            text += ".*";
        }
        sizes.push_back(compile(text.c_str()).dfa().num_states());
    }
    for (std::size_t i = 1; i < sizes.size(); ++i) {
        EXPECT_GE(sizes[i], 2 * sizes[i - 1] - 2) << "at " << i;
    }
    EXPECT_GE(sizes.back(), 1 << 6);
}

TEST(Dfa, StateLimitGuard)
{
    std::string text = "$..a";
    for (int w = 0; w < 20; ++w) {
        text += ".*";
    }
    EXPECT_THROW(compile(text.c_str()), LimitError);
}

TEST(Dfa, MinimizationMergesEquivalentStates)
{
    // Without minimization, subset construction of $..a..a..a produces
    // subsets {0},{0,1},{0,1,2},{0,1,2,3}; all are distinguishable here,
    // but $..a.* style queries produce mergeable states. Sanity: minimized
    // never larger than raw determinization.
    for (const char* text : {"$..a..a", "$..a.*..a", "$.a.b", "$..x.y..z"}) {
        auto query = query::Query::parse(text);
        Dfa raw = Dfa::determinize(Nfa::from_query(query));
        Dfa minimal = raw.minimized();
        EXPECT_LE(minimal.num_states(), raw.num_states()) << text;
        EXPECT_EQ(minimal.alphabet().total_symbols(), raw.alphabet().total_symbols());
    }
}

TEST(StateFlags, AcceptingAndRejecting)
{
    auto cq = compile("$.a");
    int s0 = cq.initial_state();
    const Alphabet& alphabet = cq.alphabet();
    int s1 = cq.transition(s0, alphabet.label_symbol("a"));
    EXPECT_FALSE(cq.flags(s0).accepting);
    EXPECT_TRUE(cq.flags(s1).accepting);
    EXPECT_FALSE(cq.flags(s1).rejecting);
    EXPECT_TRUE(cq.flags(cq.fallback(s0)).rejecting);
    EXPECT_TRUE(cq.flags(cq.fallback(s1)).rejecting);
}

TEST(StateFlags, InternalStates)
{
    // $.a.b: the initial state cannot accept in one step (internal); the
    // state after a can (b accepts).
    auto cq = compile("$.a.b");
    int s0 = cq.initial_state();
    int s1 = cq.transition(s0, cq.alphabet().label_symbol("a"));
    EXPECT_TRUE(cq.flags(s0).internal);
    EXPECT_FALSE(cq.flags(s1).internal);
    EXPECT_FALSE(cq.flags(s0).colon_toggle);
    EXPECT_TRUE(cq.flags(s1).colon_toggle);
}

TEST(StateFlags, UnitaryStates)
{
    // States before the first descendant with non-wildcard selectors are
    // unitary (single live label, fallback to trash).
    auto cq = compile("$.a.b");
    int s0 = cq.initial_state();
    int s1 = cq.transition(s0, cq.alphabet().label_symbol("a"));
    EXPECT_TRUE(cq.flags(s0).unitary);
    EXPECT_TRUE(cq.flags(s1).unitary);
    // Wildcard states are not unitary.
    auto wild = compile("$.*.b");
    EXPECT_FALSE(wild.flags(wild.initial_state()).unitary);
    // Recursive states are not unitary (fallback loops, not trash).
    auto desc = compile("$..a");
    EXPECT_FALSE(desc.flags(desc.initial_state()).unitary);
}

TEST(StateFlags, WaitingStates)
{
    // $..a: initial state waits for a (fallback self-loop).
    auto cq = compile("$..a");
    EXPECT_TRUE(cq.flags(cq.initial_state()).waiting);
    ASSERT_TRUE(cq.head_skip_label().has_value());
    EXPECT_EQ(*cq.head_skip_label(), "a");

    // $.a..b: initial is unitary, not waiting; no head-skip.
    auto mixed = compile("$.a..b");
    EXPECT_FALSE(mixed.flags(mixed.initial_state()).waiting);
    EXPECT_FALSE(mixed.head_skip_label().has_value());
    // ...but the state after a waits for b.
    int s1 = mixed.transition(mixed.initial_state(),
                              mixed.alphabet().label_symbol("a"));
    EXPECT_TRUE(mixed.flags(s1).waiting);

    // $..a..b: initial waits for a; head-skip applies.
    auto chain = compile("$..a..b");
    EXPECT_TRUE(chain.flags(chain.initial_state()).waiting);
    EXPECT_EQ(*chain.head_skip_label(), "a");

    // $..* is not waiting (no concrete label).
    auto wild = compile("$..*");
    EXPECT_FALSE(wild.flags(wild.initial_state()).waiting);
    EXPECT_FALSE(wild.head_skip_label().has_value());
}

TEST(StateFlags, CommaToggle)
{
    // $.a.*: after a, an array entry can accept -> commas on.
    auto cq = compile("$.a.*");
    int s1 = cq.transition(cq.initial_state(), cq.alphabet().label_symbol("a"));
    EXPECT_TRUE(cq.flags(s1).comma_toggle);
    EXPECT_FALSE(cq.flags(cq.initial_state()).comma_toggle);

    // $..a: array entries never match a label selector -> commas off.
    auto desc = compile("$..a");
    EXPECT_FALSE(desc.flags(desc.initial_state()).comma_toggle);
    // $..*: everything matches -> commas on.
    auto wild = compile("$..*");
    EXPECT_TRUE(wild.flags(wild.initial_state()).comma_toggle);
}

TEST(StateFlags, IndexTransitions)
{
    auto cq = compile("$[2]");
    EXPECT_TRUE(cq.has_indices());
    const Alphabet& alphabet = cq.alphabet();
    int s0 = cq.initial_state();
    int target = cq.transition(s0, alphabet.index_symbol(2));
    EXPECT_TRUE(cq.flags(target).accepting);
    EXPECT_TRUE(cq.flags(cq.fallback(s0)).rejecting);
    // Index states are not unitary (their live transition is not a label).
    EXPECT_FALSE(cq.flags(s0).unitary);
    // The comma toggle must account for index transitions.
    EXPECT_TRUE(cq.flags(s0).comma_toggle);
}

TEST(Alphabet, IntervalPartitionOfIndexSpace)
{
    // $[2][1:4].a[6:]: selector bounds {1, 2, 3, 4, 6} partition the
    // covered index space into four cells — [1,2), [2,3), [3,4), [6,inf).
    // [4,6) is covered by no selector and gets NO symbol.
    auto cq = compile("$[2][1:4].a[6:]");
    const Alphabet& alphabet = cq.alphabet();
    EXPECT_EQ(alphabet.num_labels(), 1);
    EXPECT_EQ(alphabet.num_indices(), 4);
    EXPECT_EQ(alphabet.index_symbol(4), alphabet.other_symbol());
    EXPECT_EQ(alphabet.index_symbol(5), alphabet.other_symbol());
    // The open tail is one cell: 6 and 100 share a symbol.
    EXPECT_EQ(alphabet.index_symbol(6), alphabet.index_symbol(100));
    EXPECT_NE(alphabet.index_symbol(6), alphabet.other_symbol());
    // A slice guard is exactly a run of whole cells.
    EXPECT_EQ(alphabet.symbols_in_range(1, 4).size(), 3u);
    EXPECT_EQ(alphabet.symbols_in_range(1, 4),
              (std::vector<int>{alphabet.index_symbol(1),
                                alphabet.index_symbol(2),
                                alphabet.index_symbol(3)}));
    // Representative index round-trips through the cell.
    EXPECT_EQ(alphabet.index(alphabet.index_symbol(2)), 2u);
    EXPECT_TRUE(alphabet.interval(alphabet.index_symbol(6)).contains(1u << 20));
}

TEST(StateFlags, SliceTransitions)
{
    // $[1:3]: a single slice interns ONE cell [1,3); entries 1 and 2 map
    // to the same symbol and the same accepting successor.
    auto cq = compile("$[1:3]");
    EXPECT_TRUE(cq.has_indices());
    const Alphabet& alphabet = cq.alphabet();
    EXPECT_EQ(alphabet.num_indices(), 1);
    EXPECT_EQ(alphabet.index_symbol(1), alphabet.index_symbol(2));
    int s0 = cq.initial_state();
    EXPECT_TRUE(cq.flags(cq.transition(s0, alphabet.index_symbol(1))).accepting);
    EXPECT_TRUE(cq.flags(cq.fallback(s0)).rejecting);
    EXPECT_TRUE(cq.flags(s0).comma_toggle);
}

TEST(Dfa, EmptySliceIsUnsatisfiable)
{
    // $[5:2] parses but covers nothing: no index cells, and the automaton's
    // language is empty (the initial state is already rejecting after
    // minimization folds the dead chain).
    auto cq = compile("$[5:2]");
    EXPECT_EQ(cq.alphabet().num_indices(), 0);
    EXPECT_TRUE(cq.flags(cq.initial_state()).rejecting);
}

TEST(Dfa, UnionMembersShareTheSuccessorState)
{
    // $['a','b'].c: both member labels are multi-label edges into ONE
    // successor — the union does not duplicate the suffix automaton.
    auto cq = compile("$['a','b'].c");
    const Alphabet& alphabet = cq.alphabet();
    int s0 = cq.initial_state();
    int via_a = cq.transition(s0, alphabet.label_symbol("a"));
    int via_b = cq.transition(s0, alphabet.label_symbol("b"));
    EXPECT_EQ(via_a, via_b);
    EXPECT_FALSE(cq.flags(via_a).rejecting);
    EXPECT_TRUE(
        cq.flags(cq.transition(via_a, alphabet.label_symbol("c"))).accepting);
    EXPECT_TRUE(cq.flags(cq.fallback(s0)).rejecting);
}

TEST(Dfa, FilterArcIsWildcardAtTheAutomatonLevel)
{
    // $.a[?(@.x>1)]: the filter guard is report-time; the automaton sees a
    // wildcard arc, and the predicate survives compilation for the engine.
    auto cq = compile("$.a[?(@.x>1)]");
    ASSERT_NE(cq.filter(), nullptr);
    const Alphabet& alphabet = cq.alphabet();
    int s1 = cq.transition(cq.initial_state(), alphabet.label_symbol("a"));
    EXPECT_TRUE(cq.flags(cq.transition(s1, alphabet.other_symbol())).accepting);
    EXPECT_TRUE(cq.flags(s1).comma_toggle);
    // Filter-free queries expose no predicate.
    EXPECT_EQ(compile("$.a.b").filter(), nullptr);
}

/** Language equivalence of raw and minimized DFAs on random label paths,
 *  and agreement with a direct NFA subset simulation — for random queries. */
TEST(Dfa, MinimizationPreservesLanguageOnRandomQueries)
{
    workloads::Rng rng(0x5eed);
    for (int trial = 0; trial < 120; ++trial) {
        std::string text = workloads::random_query(
            static_cast<std::uint64_t>(trial) + 1, 4, 6, /*allow_indices=*/true,
            /*extended_selectors=*/trial % 2 == 1);
        auto parsed = query::Query::parse(text);
        Nfa nfa = Nfa::from_query(parsed);
        Dfa raw = Dfa::determinize(nfa);
        Dfa minimal = raw.minimized();
        const Alphabet& alphabet = raw.alphabet();

        for (int path = 0; path < 40; ++path) {
            int raw_state = raw.initial_state();
            int min_state = minimal.initial_state();
            std::uint64_t nfa_set = 1;  // direct subset simulation
            std::uint64_t steps = rng.between(0, 8);
            for (std::uint64_t s = 0; s < steps; ++s) {
                int symbol = static_cast<int>(
                    rng.below(static_cast<std::uint64_t>(alphabet.total_symbols())));
                raw_state = raw.transition(raw_state, symbol);
                min_state = minimal.transition(min_state, symbol);
                std::uint64_t next = 0;
                for (int i = 0; i < nfa.num_states(); ++i) {
                    if (!(nfa_set >> i & 1)) {
                        continue;
                    }
                    if (nfa.state(i).recursive) {
                        next |= 1ULL << i;
                    }
                    if (nfa.advances_on(i, symbol)) {
                        next |= 1ULL << (i + 1);
                    }
                }
                nfa_set = next;
            }
            bool nfa_accepts = (nfa_set >> nfa.accepting_state()) & 1;
            ASSERT_EQ(raw.accepting(raw_state), nfa_accepts)
                << text << " trial " << trial;
            ASSERT_EQ(minimal.accepting(min_state), nfa_accepts)
                << text << " trial " << trial;
        }
    }
}

/** Row classes: states in one class must have identical transition rows. */
TEST(Dfa, RowClassesAreConsistent)
{
    for (const char* text : {"$..a..b", "$..a.b", "$.a.*..b", "$..a", "$..*.x"}) {
        auto cq = compile(text);
        const Dfa& dfa = cq.dfa();
        for (int s = 0; s < dfa.num_states(); ++s) {
            for (int t = 0; t < dfa.num_states(); ++t) {
                if (cq.row_class(s) != cq.row_class(t)) {
                    continue;
                }
                for (int symbol = 0; symbol < dfa.total_symbols(); ++symbol) {
                    ASSERT_EQ(dfa.transition(s, symbol), dfa.transition(t, symbol))
                        << text << " states " << s << "," << t;
                }
            }
        }
    }
}

TEST(StateFlags, WaitingSymbolLookup)
{
    auto cq = compile("$..bravo.x");
    int initial = cq.initial_state();
    ASSERT_TRUE(cq.flags(initial).waiting);
    int symbol = cq.waiting_symbol(initial);
    ASSERT_GE(symbol, 0);
    EXPECT_EQ(cq.alphabet().label(symbol), "bravo");
    // Non-waiting states answer -1.
    int after = cq.transition(initial, symbol);
    EXPECT_FALSE(cq.flags(after).waiting);
    EXPECT_EQ(cq.waiting_symbol(after), -1);
}

TEST(StateFlags, RootAccepting)
{
    EXPECT_TRUE(compile("$").root_accepting());
    EXPECT_FALSE(compile("$.a").root_accepting());
    EXPECT_FALSE(compile("$..a").root_accepting());
}

}  // namespace
}  // namespace descend::automaton
