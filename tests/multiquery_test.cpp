/**
 * @file
 * Fused multi-query execution: every fused backend's per-query match sets
 * must be bit-identical to N independent single-query runs — for every
 * engine configuration, including query mixes whose lanes disagree about
 * the skippability of a subtree (one lane's irrelevant region is another's
 * match territory). Both backends are exercised: the per-query lanes
 * fallback and the set-compiled product automaton (one state per distinct
 * active-set, subscriber bitsets on accepting states). The suite is
 * registered in DESCEND_TIERED_TESTS, so ctest re-runs it with every
 * dispatch tier forced via DESCEND_SIMD_LEVEL.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "descend/multi/fused.h"
#include "descend/multi/multi_engine.h"
#include "descend/multi/multi_stream.h"
#include "descend/multi/product_engine.h"
#include "descend/util/errors.h"
#include "descend/workloads/datasets.h"
#include "test_helpers.h"

namespace descend {
namespace {

using multi::CollectingMultiSink;
using multi::CollectingMultiStreamSink;
using multi::CountingMultiSink;
using multi::CountingMultiStreamSink;
using multi::FusedBackend;
using multi::MultiDescendEngine;
using multi::MultiQuery;
using multi::MultiStreamExecutor;
using multi::ProductDescendEngine;
using testing::describe;
using testing::engine_configurations;

/** Both fused backends; every parity suite runs under each. */
std::vector<FusedBackend> fused_backends()
{
    return {FusedBackend::kLanes, FusedBackend::kProduct};
}

std::string backend_label(FusedBackend backend)
{
    return std::string(multi::fused_backend_name(backend));
}

/** N independent single-query runs with the same options — the oracle. */
std::vector<std::vector<std::size_t>> independent_offsets(
    const std::vector<std::string>& queries, const PaddedString& document,
    const EngineOptions& options)
{
    std::vector<std::vector<std::size_t>> all;
    for (const std::string& text : queries) {
        DescendEngine engine(automaton::CompiledQuery::compile(text), options);
        OffsetSink sink;
        EXPECT_EQ(engine.run(document, sink), EngineStatus{})
            << "independent run failed: " << text;
        all.push_back(sink.offsets());
    }
    return all;
}

/** Fused == N independent, for every engine configuration and backend. */
void expect_fused_matches_independent(const std::vector<std::string>& queries,
                                      const std::string& document)
{
    PaddedString padded(document);
    for (const EngineOptions& options : engine_configurations()) {
        SCOPED_TRACE("configuration: " + describe(options));
        std::vector<std::vector<std::size_t>> expected =
            independent_offsets(queries, padded, options);
        for (FusedBackend backend : fused_backends()) {
            SCOPED_TRACE("backend: " + backend_label(backend));
            std::unique_ptr<multi::FusedEngine> fused =
                multi::make_fused_engine(queries, options, backend);
            CollectingMultiSink sink(queries.size());
            ASSERT_EQ(fused->run(padded, sink), EngineStatus{});
            for (std::size_t q = 0; q < queries.size(); ++q) {
                EXPECT_EQ(sink.offsets(q), expected[q])
                    << "query: " << queries[q];
            }
        }
    }
}

// ------------------------------------------------------------- compilation

TEST(MultiQueryCompile, SharedAlphabetAndRemap)
{
    MultiQuery set = MultiQuery::compile(
        std::vector<std::string>{"$.a.b", "$..b", "$.c.*"});
    EXPECT_EQ(set.size(), 3u);
    // The union alphabet knows every label; each lane's remap sends labels
    // it never mentions to its private OTHER symbol (and symbol identity is
    // preserved for labels it does mention — checked indirectly by the
    // match-parity suites below).
    EXPECT_FALSE(set.any_counting());
    EXPECT_FALSE(set.all_root_accepting());
}

TEST(MultiQueryCompile, EmptySetIsAnError)
{
    EXPECT_ANY_THROW(MultiQuery::compile(std::vector<std::string>{}));
}

TEST(MultiQueryCompile, CommonHeadSkipLabelRequiresUnanimity)
{
    MultiQuery same = MultiQuery::compile(
        std::vector<std::string>{"$..name", "$..name.first"});
    ASSERT_TRUE(same.common_head_skip_label().has_value());
    EXPECT_EQ(*same.common_head_skip_label(), "name");

    // Differing head labels — or a lane that cannot head-skip at all —
    // forfeit the label-search pipeline for the whole set.
    MultiQuery differ = MultiQuery::compile(
        std::vector<std::string>{"$..name", "$..title"});
    EXPECT_FALSE(differ.common_head_skip_label().has_value());
    MultiQuery mixed = MultiQuery::compile(
        std::vector<std::string>{"$..name", "$.a.b"});
    EXPECT_FALSE(mixed.common_head_skip_label().has_value());
}

// ------------------------------------------------------------------ dedup

TEST(MultiQueryCompile, DuplicateQueriesShareOneDistinctSlot)
{
    // A 100x-duplicated two-query set: compilation and execution cost are
    // per DISTINCT query; every duplicate subscription keeps its input
    // index as an owner of the shared slot.
    std::vector<std::string> queries;
    for (int i = 0; i < 100; ++i) {
        queries.push_back("$..id");
        queries.push_back("$.meta.id");
    }
    MultiQuery set = MultiQuery::compile(queries);
    EXPECT_EQ(set.size(), 200u);
    ASSERT_EQ(set.num_distinct(), 2u);
    EXPECT_EQ(set.owners(0).size(), 100u);
    EXPECT_EQ(set.owners(1).size(), 100u);
    for (std::size_t i = 0; i < set.size(); ++i) {
        EXPECT_EQ(set.distinct_index(i), i % 2);
    }
    // Spelling variants canonicalize to the same distinct query.
    MultiQuery spelled = MultiQuery::compile(
        std::vector<std::string>{"$.a.b", "$['a']['b']", "$..c"});
    EXPECT_EQ(spelled.num_distinct(), 2u);
    EXPECT_EQ(spelled.distinct_index(0), spelled.distinct_index(1));
}

TEST(MultiEngine, HundredFoldDuplicatedSetReplicatesResults)
{
    std::string document =
        R"({"meta": {"id": 1}, "rows": [{"id": 2}, {"nested": {"id": 3}}]})";
    std::vector<std::string> queries;
    for (int i = 0; i < 100; ++i) {
        queries.push_back("$..id");
        queries.push_back("$.meta.id");
    }
    PaddedString padded(document);
    std::vector<std::vector<std::size_t>> expected = independent_offsets(
        {"$..id", "$.meta.id"}, padded, EngineOptions{});
    for (FusedBackend backend : fused_backends()) {
        SCOPED_TRACE("backend: " + backend_label(backend));
        std::unique_ptr<multi::FusedEngine> fused =
            multi::make_fused_engine(queries, {}, backend);
        CollectingMultiSink sink(queries.size());
        ASSERT_EQ(fused->run(padded, sink), EngineStatus{});
        for (std::size_t q = 0; q < queries.size(); ++q) {
            EXPECT_EQ(sink.offsets(q), expected[q % 2]) << "query " << q;
        }
    }
}

TEST(MultiEngine, DuplicatesTripTheMatchLimitLikeTheOriginal)
{
    // The per-query limit counts matches of the DISTINCT query once, so a
    // duplicated subscription trips at the same offset as a lone one.
    std::string document = R"({"a": 1, "b": {"a": 2}, "c": {"a": 3}})";
    PaddedString padded(document);
    EngineOptions options;
    options.limits.max_match_count = 2;
    DescendEngine single(automaton::CompiledQuery::compile("$..a"), options);
    OffsetSink single_sink;
    EngineStatus expected = single.run(padded, single_sink);
    ASSERT_EQ(expected.code, StatusCode::kMatchLimit);
    for (FusedBackend backend : fused_backends()) {
        SCOPED_TRACE("backend: " + backend_label(backend));
        std::unique_ptr<multi::FusedEngine> fused = multi::make_fused_engine(
            std::vector<std::string>{"$..a", "$..a", "$..a"}, options,
            backend);
        CollectingMultiSink sink(3);
        EXPECT_EQ(fused->run(padded, sink), expected);
    }
}

// -------------------------------------------------------- product automaton

TEST(ProductAutomaton, SharedPrefixCollapsesToOneStatePath)
{
    // 32 subscriptions down the same object spine: the product trie shares
    // the spine, so states grow as prefix + one leaf per subscription —
    // nowhere near 32 independent four-state automata.
    std::vector<std::string> queries;
    for (int i = 0; i < 32; ++i) {
        queries.push_back("$.a.b.c.f" + std::to_string(i));
    }
    ProductDescendEngine engine(MultiQuery::compile(queries));
    EXPECT_GE(engine.automaton().num_states(), 32u);
    EXPECT_LE(engine.automaton().num_states(), 40u);
}

TEST(ProductAutomaton, StateCapTripsLimitErrorAndAutoFallsBack)
{
    MultiQuery set = MultiQuery::compile(
        std::vector<std::string>{"$..a..b", "$.c.*.d"});
    EXPECT_THROW(ProductDescendEngine(set, EngineOptions{}, 2), LimitError);
    // kAuto prefers the product backend whenever the set compiles under
    // the default cap (the fallback path is the same make_fused_engine
    // catch that this explicit cap exercises).
    std::unique_ptr<multi::FusedEngine> engine = multi::make_fused_engine(
        std::vector<std::string>{"$..a..b", "$.c.*.d"});
    EXPECT_NE(engine->name().find("product"), std::string::npos);
}

TEST(ProductAutomaton, SubscriberSetsFanOutToEveryOwner)
{
    // Two subscriptions accepting at the same node must both be reported,
    // interleaved with a third that accepts elsewhere.
    std::string document = R"({"a": {"b": 1, "c": 2}})";
    expect_fused_matches_independent({"$.a.b", "$..b", "$.a.c"}, document);
}

// ----------------------------------------------------------- single-pass

TEST(MultiEngine, FusedMatchesIndependentRuns)
{
    std::string document = R"({
      "a": {"b": 1, "c": {"b": 2}},
      "c": {"x": 3, "y": [4, 5]},
      "b": {"deep": {"b": 6}}
    })";
    expect_fused_matches_independent({"$.a.b", "$..b", "$.c.*", "$..c..b"},
                                     document);
}

TEST(MultiEngine, SingleQuerySetDegeneratesToTheEngine)
{
    std::string document = R"({"a": {"b": [1, {"b": 2}]}})";
    expect_fused_matches_independent({"$..b"}, document);
}

TEST(MultiEngine, SkippabilityDisagreeingDescendantMixes)
{
    // The subtree under "payload" is skippable for the child-path lanes
    // (their automata are in trash there) but descendant lanes must walk
    // it; conversely "meta" matches the child lanes and is junk to the
    // descendant ones. No consensus skip is unanimous — every fast-forward
    // decision is exercised in both the taken and suppressed direction.
    std::string document = R"({
      "meta": {"id": 1, "name": "x"},
      "payload": {
        "rows": [
          {"id": 2, "nested": {"id": 3, "name": "y"}},
          {"name": "z", "list": [{"id": 4}]}
        ]
      },
      "id": 5
    })";
    expect_fused_matches_independent(
        {"$.meta.id", "$..id", "$.payload.rows.*.id", "$..nested..name",
         "$.meta.*"},
        document);
}

TEST(MultiEngine, TrashedLanesDoNotVetoSkips)
{
    // Lanes that can never match again ("$.absent.x") must agree to every
    // skip; the live lane's results are unaffected and the dead lanes stay
    // empty.
    std::string document = R"({"a": {"big": [[[1, 2], 3], {"x": 4}]}, "b": 5})";
    expect_fused_matches_independent({"$.absent.x", "$.b", "$..x", "$.zzz.*"},
                                     document);
}

TEST(MultiEngine, IndexSelectorsAcrossLanes)
{
    // One counting lane forces array-entry tracking for the set; the
    // non-counting lanes must be unaffected.
    std::string document =
        R"({"items": [{"v": 1}, {"v": 2}, {"v": 3}], "v": [10, 20]})";
    expect_fused_matches_independent({"$.items[1].v", "$..v", "$.v[0]"},
                                     document);
    EXPECT_TRUE(MultiQuery::compile(std::vector<std::string>{"$.a[0]", "$.b"})
                    .any_counting());
}

TEST(MultiQueryCompile, SpellingVariantsDedupToOneLane)
{
    // Canonicalization keys dedup: dot form, single- and double-quoted
    // bracket forms of the same path share one distinct slot.
    MultiQuery set = MultiQuery::compile(
        std::vector<std::string>{"$.a", "$['a']", "$[\"a\"]"});
    EXPECT_EQ(set.size(), 3u);
    EXPECT_EQ(set.num_distinct(), 1u);
    EXPECT_EQ(set.owners(0).size(), 3u);
}

TEST(MultiQueryCompile, SlicesMarkTheSetCounting)
{
    EXPECT_TRUE(MultiQuery::compile(std::vector<std::string>{"$.a[1:3]", "$.b"})
                    .any_counting());
    EXPECT_TRUE(MultiQuery::compile(std::vector<std::string>{"$['x','y']",
                                                             "$.a[2:]"})
                    .any_counting());
    EXPECT_FALSE(
        MultiQuery::compile(std::vector<std::string>{"$['x','y']", "$..b"})
            .any_counting());
}

TEST(MultiEngine, ExtendedSelectorsAcrossBackends)
{
    // Slices, unions, spelling variants and plain indices fused together;
    // both backends must reproduce N independent runs exactly.
    std::string document = R"({
        "a": [{"x": 1}, {"x": 2}, {"x": 3}, {"x": 4}],
        "c": {"a": [10, 20, 30]},
        "x": 5
    })";
    expect_fused_matches_independent(
        {"$.a[1:3]", "$['a','c']", "$.a[0]", "$..x", "$['a'][2].x"}, document);
    // Overlapping slice/index guards over one shared alphabet: the union
    // boundary set refines each lane's own cells.
    expect_fused_matches_independent(
        {"$.a[0:2]", "$.a[1:4]", "$.a[2]", "$.a[1:]"}, document);
}

TEST(MultiEngine, FilterSetsFallBackToLanes)
{
    // The product backend refuses filter selectors (report-time predicates
    // are per-lane state); kAuto must degrade to lanes, and lanes must
    // agree with independent runs.
    std::vector<std::string> queries{"$.a[?(@.x>2)]", "$..x"};
    std::string document =
        R"({"a": [{"x": 1}, {"x": 3}, {"x": 9}], "b": {"x": 7}})";
    PaddedString padded(document);
    EngineOptions options;
    EXPECT_THROW(
        multi::make_fused_engine(queries, options, FusedBackend::kProduct),
        LimitError);
    std::vector<std::vector<std::size_t>> expected =
        independent_offsets(queries, padded, options);
    for (FusedBackend backend : {FusedBackend::kLanes, FusedBackend::kAuto}) {
        SCOPED_TRACE("backend: " + backend_label(backend));
        std::unique_ptr<multi::FusedEngine> fused =
            multi::make_fused_engine(queries, options, backend);
        CollectingMultiSink sink(queries.size());
        ASSERT_EQ(fused->run(padded, sink), EngineStatus{});
        for (std::size_t q = 0; q < queries.size(); ++q) {
            EXPECT_EQ(sink.offsets(q), expected[q]) << "query: " << queries[q];
        }
    }
}

TEST(MultiEngine, GeneratedDatasetMixes)
{
    // Realistic multi-block documents: head-skip-able descendant queries
    // fused with child-path queries over the same bytes.
    std::string crossref = workloads::generate_crossref(200 * 1024);
    expect_fused_matches_independent(
        {"$..DOI", "$.items.*.title", "$..author..affiliation..name",
         "$.items.*.author.*.ORCID"},
        crossref);
    std::string ast = workloads::generate_ast(150 * 1024);
    expect_fused_matches_independent(
        {"$..decl.name", "$..inner..inner..type.qualType", "$..range.end.col"},
        ast);
}

TEST(MultiEngine, CountingSinkAgreesWithCollectingSink)
{
    std::vector<std::string> queries{"$..b", "$.a.*"};
    std::string document = R"({"a": {"b": 1, "c": 2}, "b": 3})";
    PaddedString padded(document);
    for (FusedBackend backend : fused_backends()) {
        SCOPED_TRACE("backend: " + backend_label(backend));
        std::unique_ptr<multi::FusedEngine> fused =
            multi::make_fused_engine(queries, {}, backend);
        CollectingMultiSink collect(queries.size());
        CountingMultiSink count(queries.size());
        ASSERT_EQ(fused->run(padded, collect), EngineStatus{});
        ASSERT_EQ(fused->run(padded, count), EngineStatus{});
        std::size_t total = 0;
        for (std::size_t q = 0; q < queries.size(); ++q) {
            EXPECT_EQ(count.count(q), collect.offsets(q).size());
            total += collect.offsets(q).size();
        }
        EXPECT_EQ(count.total(), total);
    }
}

TEST(MultiEngine, PerLaneMatchLimitFailsTheRun)
{
    // EngineLimits::max_match_count is enforced per lane, mirroring N
    // independent runs: the lane with three matches trips a limit of two
    // at its third match's offset even though the other lane is under it.
    std::string document = R"({"a": 1, "b": {"a": 2}, "c": {"a": 3}})";
    PaddedString padded(document);
    EngineOptions options;
    options.limits.max_match_count = 2;
    DescendEngine single(automaton::CompiledQuery::compile("$..a"), options);
    OffsetSink single_sink;
    EngineStatus expected = single.run(padded, single_sink);
    ASSERT_EQ(expected.code, StatusCode::kMatchLimit);
    for (FusedBackend backend : fused_backends()) {
        SCOPED_TRACE("backend: " + backend_label(backend));
        std::unique_ptr<multi::FusedEngine> fused = multi::make_fused_engine(
            std::vector<std::string>{"$..a", "$.a"}, options, backend);
        CollectingMultiSink sink(2);
        EXPECT_EQ(fused->run(padded, sink), expected);
    }
}

TEST(MultiEngine, MalformedDocumentFailsTheSet)
{
    PaddedString padded(R"({"a": {"b": 1})");  // truncated
    for (FusedBackend backend : fused_backends()) {
        SCOPED_TRACE("backend: " + backend_label(backend));
        std::unique_ptr<multi::FusedEngine> fused = multi::make_fused_engine(
            std::vector<std::string>{"$.a.b", "$..b"}, {}, backend);
        CollectingMultiSink sink(2);
        EXPECT_FALSE(fused->run(padded, sink).ok());
    }
}

// -------------------------------------------------------------- streaming

/** NDJSON stream whose records exercise disagreement and failure. */
std::string build_stream(std::size_t records)
{
    std::string text;
    for (std::size_t i = 0; i < records; ++i) {
        switch (i % 4) {
        case 0:
            text += R"({"meta": {"id": 1}, "payload": {"id": 2, "x": 3}})";
            break;
        case 1:
            text += R"({"id": [4, {"id": 5}], "x": {"deep": {"id": 6}}})";
            break;
        case 2:
            text += R"({"x": 7})";
            break;
        default:
            text += R"({"payload": {"rows": [{"id": 8}, {"id": 9}]}})";
            break;
        }
        text += i % 3 == 0 ? "\r\n" : "\n";
    }
    return text;
}

TEST(MultiStream, FusedStreamMatchesPerRecordIndependentRuns)
{
    std::vector<std::string> queries{"$..id", "$.meta.id", "$.payload.*",
                                     "$.x"};
    std::string text = build_stream(23);
    PaddedString input(text);
    std::vector<stream::RecordSpan> records =
        stream::split_records(input, simd::best_kernels());

    // Oracle: each record copied out and run through N single engines.
    std::vector<CollectingMultiStreamSink::Match> expected;
    for (std::size_t r = 0; r < records.size(); ++r) {
        PaddedString copy(
            input.view().substr(records[r].begin, records[r].size()));
        std::vector<std::vector<std::size_t>> per_query =
            independent_offsets(queries, copy, EngineOptions{});
        for (std::size_t q = 0; q < queries.size(); ++q) {
            for (std::size_t offset : per_query[q]) {
                expected.push_back({q, r, offset});
            }
        }
    }
    // Replay order: records ascending, then queries ascending — exactly the
    // oracle's nesting above once sorted by (record, query, offset).
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto& a, const auto& b) {
                         return a.record != b.record ? a.record < b.record
                                                     : a.query < b.query;
                     });

    for (FusedBackend backend : fused_backends()) {
        SCOPED_TRACE("backend: " + backend_label(backend));
        for (std::size_t threads :
             {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
            stream::StreamOptions options;
            options.threads = threads;
            options.records_per_batch = 3;  // force several batches
            MultiStreamExecutor executor =
                MultiStreamExecutor::for_queries(queries, options, backend);
            CollectingMultiStreamSink sink;
            stream::StreamResult result = executor.run(input, sink);
            EXPECT_EQ(result.records, records.size()) << threads << " threads";
            EXPECT_TRUE(sink.errors().empty()) << threads << " threads";
            EXPECT_EQ(sink.matches(), expected) << threads << " threads";
            EXPECT_EQ(result.matches, expected.size()) << threads << " threads";
        }
    }
}

TEST(MultiStream, MalformedRecordFailsEveryLaneOfThatRecordOnly)
{
    std::string text = R"({"id": 1})" "\n" R"({"id": )" "\n" R"({"id": 3})" "\n";
    PaddedString input(text);
    for (FusedBackend backend : fused_backends()) {
        SCOPED_TRACE("backend: " + backend_label(backend));
        MultiStreamExecutor executor = MultiStreamExecutor::for_queries(
            std::vector<std::string>{"$.id", "$..id"}, {}, backend);
        CollectingMultiStreamSink sink;
        stream::StreamResult result = executor.run(input, sink);
        EXPECT_EQ(result.records, 3u);
        EXPECT_EQ(result.failed_records, 1u);
        ASSERT_EQ(sink.errors().size(), 1u);
        EXPECT_EQ(sink.errors()[0].record, 1u);
        // Records 0 and 2 contribute both lanes; record 1 contributes
        // nothing.
        ASSERT_EQ(sink.matches().size(), 4u);
        for (const auto& match : sink.matches()) {
            EXPECT_NE(match.record, 1u);
        }

        stream::StreamOptions fail_fast;
        fail_fast.policy = stream::ErrorPolicy::kFailFast;
        MultiStreamExecutor strict = MultiStreamExecutor::for_queries(
            std::vector<std::string>{"$.id", "$..id"}, fail_fast, backend);
        CountingMultiStreamSink counting(2);
        stream::StreamResult aborted = strict.run(input, counting);
        EXPECT_FALSE(aborted.ok());
        EXPECT_EQ(counting.failed_records(), 1u);
    }
}

}  // namespace
}  // namespace descend
