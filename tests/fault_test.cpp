/**
 * @file
 * Failpoint-registry tests: deterministic fault injection through the
 * compile-time-gated src/descend/fault subsystem.
 *
 * The suite is registered in every build; with DESCEND_FAULT=OFF each test
 * skips up front (the no-op inline stubs are still exercised by the
 * registration itself). With DESCEND_FAULT=ON it pins down:
 *  - one-shot arming semantics (skip counts, hit/fired accounting),
 *  - a deterministic engine-visible failure for every governance
 *    StatusCode (kDeadlineExceeded, kCancelled) via the batch-refill site,
 *  - the from_file I/O failpoints (open, short read, mmap fall-through),
 *  - DESCEND_FAULT_SPEC-style spec parsing.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "descend/descend.h"
#include "descend/fault/failpoints.h"
#include "descend/stream/stream_executor.h"
#include "descend/util/errors.h"

namespace descend {
namespace {

class FaultTest : public ::testing::Test {
protected:
    void SetUp() override
    {
        if (!fault::kEnabled) {
            GTEST_SKIP() << "built with DESCEND_FAULT=OFF";
        }
        fault::disarm_all();
    }
    void TearDown() override { fault::disarm_all(); }
};

/** A ~600-byte document: enough blocks for several batch refills. */
std::string wide_document()
{
    std::string doc = "{\"a\":[";
    for (int i = 0; i < 120; ++i) {
        doc += (i ? ",{\"b\":1}" : "{\"b\":1}");
    }
    doc += "]}";
    return doc;
}

TEST_F(FaultTest, OneShotFiresExactlyOnceAfterSkip)
{
    fault::arm(fault::Site::kBatchRefill, 2, 0);
    EXPECT_FALSE(fault::should_fire(fault::Site::kBatchRefill));
    EXPECT_FALSE(fault::should_fire(fault::Site::kBatchRefill));
    EXPECT_TRUE(fault::should_fire(fault::Site::kBatchRefill));
    EXPECT_FALSE(fault::should_fire(fault::Site::kBatchRefill));
    EXPECT_EQ(fault::hits(fault::Site::kBatchRefill), 4u);
    EXPECT_EQ(fault::fired_count(fault::Site::kBatchRefill), 1u);
    fault::disarm_all();
    EXPECT_EQ(fault::hits(fault::Site::kBatchRefill), 0u);
    EXPECT_EQ(fault::fired_count(fault::Site::kBatchRefill), 0u);
}

TEST_F(FaultTest, DisarmDiscardsAPendingShot)
{
    fault::arm(fault::Site::kBatchRefill, 0, 0);
    fault::disarm(fault::Site::kBatchRefill);
    EXPECT_FALSE(fault::should_fire(fault::Site::kBatchRefill));
}

TEST_F(FaultTest, BatchRefillForcesDeadlineExceeded)
{
    std::string doc = wide_document();
    PaddedString padded(doc);
    fault::arm(fault::Site::kBatchRefill, 0,
               static_cast<std::uint64_t>(StatusCode::kDeadlineExceeded));
    DescendEngine engine = DescendEngine::for_query("$..b");
    CountSink sink;
    EngineStatus status = engine.run(padded, sink);
    EXPECT_EQ(fault::fired_count(fault::Site::kBatchRefill), 1u);
    EXPECT_EQ(status.code, StatusCode::kDeadlineExceeded);
    EXPECT_LE(status.offset, padded.size());
}

TEST_F(FaultTest, BatchRefillForcesCancelled)
{
    std::string doc = wide_document();
    PaddedString padded(doc);
    fault::arm(fault::Site::kBatchRefill, 0,
               static_cast<std::uint64_t>(StatusCode::kCancelled));
    DescendEngine engine = DescendEngine::for_query("$..b");
    CountSink sink;
    EngineStatus status = engine.run(padded, sink);
    EXPECT_EQ(fault::fired_count(fault::Site::kBatchRefill), 1u);
    EXPECT_EQ(status.code, StatusCode::kCancelled);
}

TEST_F(FaultTest, BatchRefillAtLaterBlockKeepsEarlierMatches)
{
    // Firing at the second refill: matches from the first 512-byte batch
    // are delivered before the forced interrupt parks the stream.
    std::string doc = wide_document();
    PaddedString padded(doc);
    EngineOptions options;
    options.head_skipping = false;  // single pipeline: refill order is fixed
    fault::arm(fault::Site::kBatchRefill, 1,
               static_cast<std::uint64_t>(StatusCode::kDeadlineExceeded));
    DescendEngine engine(automaton::CompiledQuery::compile("$..b"), options);
    OffsetSink sink;
    EngineStatus status = engine.run(padded, sink);
    EXPECT_EQ(status.code, StatusCode::kDeadlineExceeded);
    EXPECT_GT(sink.offsets().size(), 0u);
    EXPECT_GE(status.offset, simd::kBatchSize);
}

TEST_F(FaultTest, OutOfRangePayloadDefaultsToDeadline)
{
    std::string doc = wide_document();
    PaddedString padded(doc);
    fault::arm(fault::Site::kBatchRefill, 0, 9999);
    DescendEngine engine = DescendEngine::for_query("$..b");
    CountSink sink;
    EXPECT_EQ(engine.run(padded, sink).code, StatusCode::kDeadlineExceeded);
}

TEST_F(FaultTest, StreamRecordFailsWithForcedCode)
{
    std::string text = "{\"id\":0}\n{\"id\":1}\n{\"id\":2}\n";
    PaddedString padded(text);
    fault::arm(fault::Site::kBatchRefill, 0,
               static_cast<std::uint64_t>(StatusCode::kCancelled));
    fault::arm(fault::Site::kWorkerStartup, 0, 1);  // 1 ms stall, coverage
    stream::StreamOptions options;
    options.threads = 1;
    stream::StreamExecutor executor =
        stream::StreamExecutor::for_query("$..id", options);
    stream::CollectingStreamSink sink;
    stream::StreamResult result = executor.run(padded, sink);
    EXPECT_EQ(result.records, 3u);
    EXPECT_EQ(result.failed_records, 1u);
    ASSERT_EQ(sink.errors().size(), 1u);
    EXPECT_EQ(sink.errors().front().record, 0u);
    EXPECT_EQ(sink.errors().front().status.code, StatusCode::kCancelled);
    // No stream budget was set: a governance-coded record failure counts
    // as a regular record error, not a budget stop.
    EXPECT_FALSE(result.budget_stopped);
}

class FromFileFaultTest : public FaultTest {
protected:
    std::string write_temp(const std::string& contents)
    {
        std::string path = ::testing::TempDir() + "fault_test_doc.json";
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << contents;
        out.close();
        return path;
    }
};

TEST_F(FromFileFaultTest, OpenFailpointThrows)
{
    std::string path = write_temp("{\"a\":1}");
    fault::arm(fault::Site::kFromFileOpen);
    EXPECT_THROW(PaddedString::from_file(path), Error);
    EXPECT_EQ(fault::fired_count(fault::Site::kFromFileOpen), 1u);
    // The shot is spent: the next open succeeds.
    PaddedString loaded = PaddedString::from_file(path);
    EXPECT_EQ(loaded.view(), "{\"a\":1}");
    std::remove(path.c_str());
}

TEST_F(FromFileFaultTest, ShortReadFailpointThrows)
{
    std::string path = write_temp("{\"a\":1}");
    fault::arm(fault::Site::kFromFileRead);
    EXPECT_THROW(PaddedString::from_file(path), Error);
    EXPECT_EQ(fault::fired_count(fault::Site::kFromFileRead), 1u);
    std::remove(path.c_str());
}

TEST_F(FromFileFaultTest, MmapFailpointFallsThroughToPortableRead)
{
    // A file past kMmapThreshold takes the mmap fast path; the failpoint
    // simulates a map failure and the portable read must still succeed
    // with identical contents.
    std::string big = "[";
    while (big.size() < PaddedString::kMmapThreshold + 100) {
        big += "1,";
    }
    big += "1]";
    std::string path = write_temp(big);
    fault::arm(fault::Site::kFromFileMmap);
    PaddedString loaded = PaddedString::from_file(path);
    EXPECT_EQ(loaded.size(), big.size());
    EXPECT_EQ(loaded.view().substr(0, 16), big.substr(0, 16));
#if defined(__unix__) || defined(__APPLE__)
    EXPECT_EQ(fault::fired_count(fault::Site::kFromFileMmap), 1u);
#endif
    std::remove(path.c_str());
}

TEST_F(FaultTest, SpecParsingArmsSites)
{
    EXPECT_TRUE(fault::arm_from_spec("batch_refill=3:10"));
    EXPECT_EQ(fault::payload(fault::Site::kBatchRefill), 10u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_FALSE(fault::should_fire(fault::Site::kBatchRefill));
    }
    EXPECT_TRUE(fault::should_fire(fault::Site::kBatchRefill));

    fault::disarm_all();
    EXPECT_TRUE(fault::arm_from_spec("from_file_open=0,worker_startup=1:5"));
    EXPECT_TRUE(fault::should_fire(fault::Site::kFromFileOpen));
    EXPECT_EQ(fault::payload(fault::Site::kWorkerStartup), 5u);
}

TEST_F(FaultTest, MalformedSpecIsRejected)
{
    EXPECT_FALSE(fault::arm_from_spec("no_such_site=1"));
    EXPECT_FALSE(fault::arm_from_spec("batch_refill"));
    EXPECT_FALSE(fault::arm_from_spec("batch_refill=x"));
    EXPECT_FALSE(fault::arm_from_spec("=1"));
    EXPECT_TRUE(fault::arm_from_spec(""));
}

TEST_F(FaultTest, SiteNamesAreStable)
{
    EXPECT_STREQ(fault::site_name(fault::Site::kFromFileOpen),
                 "from_file_open");
    EXPECT_STREQ(fault::site_name(fault::Site::kFromFileRead),
                 "from_file_read");
    EXPECT_STREQ(fault::site_name(fault::Site::kFromFileMmap),
                 "from_file_mmap");
    EXPECT_STREQ(fault::site_name(fault::Site::kBatchRefill), "batch_refill");
    EXPECT_STREQ(fault::site_name(fault::Site::kWorkerStartup),
                 "worker_startup");
}

}  // namespace
}  // namespace descend
