/**
 * @file
 * Differential property tests: random documents crossed with random
 * queries; the DOM oracle, the surfer baseline, and the main engine in
 * every configuration must produce identical match sets.
 *
 * Parameterized over (shape profile x seed block); each instance runs many
 * (document, query) pairs, so the suite covers thousands of cases.
 */
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "descend/workloads/builder.h"
#include "descend/workloads/random_json.h"
#include "test_helpers.h"

namespace descend {
namespace {

struct ShapeProfile {
    const char* name;
    workloads::RandomJsonOptions options;
};

ShapeProfile shape(const char* name, int max_depth, int max_width,
                   unsigned container_chance, unsigned whitespace_chance,
                   unsigned nasty_string_chance)
{
    ShapeProfile profile;
    profile.name = name;
    profile.options.max_depth = max_depth;
    profile.options.max_width = max_width;
    profile.options.container_chance = container_chance;
    profile.options.whitespace_chance = whitespace_chance;
    profile.options.nasty_string_chance = nasty_string_chance;
    return profile;
}

const ShapeProfile kShapes[] = {
    shape("balanced", 8, 6, 70, 20, 25),
    shape("deep", 20, 3, 95, 5, 10),
    shape("wide", 4, 14, 60, 10, 10),
    shape("escape_heavy", 6, 5, 60, 15, 80),
    shape("whitespace_heavy", 6, 5, 65, 70, 20),
    shape("atoms", 3, 10, 40, 20, 30),
};

class PropertyTest
    : public ::testing::TestWithParam<std::tuple<int /*shape*/, int /*seed block*/>> {
};

TEST_P(PropertyTest, AllEnginesAgreeOnRandomInputs)
{
    const auto [shape_index, seed_block] = GetParam();
    ShapeProfile profile = kShapes[shape_index];
    for (int i = 0; i < 12; ++i) {
        workloads::RandomJsonOptions options = profile.options;
        options.seed = static_cast<std::uint64_t>(seed_block) * 1000 +
                       static_cast<std::uint64_t>(i) * 37 + 1;
        std::string document = workloads::random_json(options);
        for (int q = 0; q < 6; ++q) {
            std::string query = workloads::random_query(
                options.seed * 131 + static_cast<std::uint64_t>(q),
                options.label_pool, 5, /*allow_indices=*/true,
                /*extended_selectors=*/q % 2 == 1);
            testing::expect_all_engines_agree(query, document);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PropertyTest,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Range(0, 6)),
    [](const ::testing::TestParamInfo<PropertyTest::ParamType>& info) {
        return std::string(kShapes[std::get<0>(info.param)].name) + "_seed" +
               std::to_string(std::get<1>(info.param));
    });

/** Larger single documents: stress block-crossing and deep stacks. */
TEST(PropertyLarge, BigDocumentsAgree)
{
    for (int seed = 1; seed <= 3; ++seed) {
        workloads::RandomJsonOptions options;
        options.seed = static_cast<std::uint64_t>(seed) * 7919;
        options.max_depth = 14;
        options.max_width = 9;
        options.container_chance = 85;
        std::string document = workloads::random_json(options);
        for (const char* query :
             {"$..a", "$..a..b", "$.a.*..c", "$..*.b", "$[0]..a[1]"}) {
            testing::expect_all_engines_agree(query, document);
        }
    }
}

/**
 * Robustness: the engine promises only *safe* behaviour on malformed
 * input (no crash, no hang, no out-of-bounds) — randomly mutated and
 * truncated documents must run to completion in every configuration.
 */
TEST(PropertyRobustness, MutatedDocumentsDoNotCrash)
{
    workloads::Rng rng(0xfeedface);
    static const char kNoise[] = "{}[]:,\"\\x0 ";
    for (int seed = 1; seed <= 40; ++seed) {
        workloads::RandomJsonOptions options;
        options.seed = static_cast<std::uint64_t>(seed);
        options.max_depth = 6;
        std::string document = workloads::random_json(options);
        // Mutate a few random bytes, or truncate.
        std::string mutated = document;
        if (!mutated.empty() && rng.chance(30)) {
            mutated.resize(rng.below(mutated.size()) + 1);
        }
        for (int m = 0; m < 4 && !mutated.empty(); ++m) {
            mutated[rng.below(mutated.size())] =
                kNoise[rng.below(sizeof(kNoise) - 1)];
        }
        PaddedString padded(mutated);
        for (const char* query : {"$.a", "$..a", "$..a.b", "$.*.*", "$[1]..b"}) {
            for (const EngineOptions& config : testing::engine_configurations()) {
                DescendEngine engine(automaton::CompiledQuery::compile(query),
                                     config);
                CountSink sink;
                engine.run(padded, sink);  // must terminate without crashing
            }
        }
    }
}

/** Regression corpus: every discrepancy ever found lands here. */
TEST(PropertyRegressions, KnownTrickyCases)
{
    testing::expect_all_engines_agree("$..a.b", R"({"a": {"a": {"b": 1}}})");
    testing::expect_all_engines_agree("$..a[0]", R"({"a": [[1], 2]})");
    testing::expect_all_engines_agree("$.*[1]", R"([[1, 2], {"x": [3, 4]}])");
    testing::expect_all_engines_agree("$..b", R"({"b": {"b": {"b": 1}}})");
    testing::expect_all_engines_agree(
        "$..a.*", R"({"a": [1, {"a": [2]}], "x": {"a": {"y": 3}}})");
}

}  // namespace
}  // namespace descend
