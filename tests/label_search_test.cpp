/**
 * @file
 * Tests for the memmem-style label search underlying head-skipping: only
 * genuine member labels are reported — never string values, never
 * occurrences inside strings — across block boundaries.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "descend/engine/label_search.h"

namespace descend {
namespace {

std::vector<std::size_t> find_all(const std::string& document,
                                  const std::string& label,
                                  simd::Level level = simd::Level::avx2)
{
    PaddedString padded(document);
    LabelSearch search(padded, simd::kernels_for(level), label);
    std::vector<std::size_t> quotes;
    while (auto occurrence = search.next()) {
        quotes.push_back(occurrence->quote_pos);
    }
    return quotes;
}

TEST(LabelSearch, FindsMemberLabels)
{
    std::string doc = R"({"a": 1, "b": {"a": 2}})";
    auto hits = find_all(doc, "a");
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0], 1u);
    EXPECT_EQ(hits[1], 15u);
}

TEST(LabelSearch, IgnoresStringValues)
{
    // "a" as a value, and "a": inside a string, must not count.
    EXPECT_TRUE(find_all(R"(["a", "a"])", "a").empty());
    EXPECT_TRUE(find_all(R"({"x": "\"a\": 1"})", "a").empty());
    EXPECT_TRUE(find_all(R"({"x": "a"})", "a").empty());
    EXPECT_EQ(find_all(R"({"x": "\"a\": 1", "a": 2})", "a").size(), 1u);
}

TEST(LabelSearch, RequiresExactLabel)
{
    EXPECT_TRUE(find_all(R"({"ab": 1, "xa": 2})", "a").empty());
    EXPECT_EQ(find_all(R"({"ab": 1})", "ab").size(), 1u);
}

TEST(LabelSearch, ColonMayBeSeparatedByWhitespace)
{
    EXPECT_EQ(find_all("{\"a\"  \n\t: 1}", "a").size(), 1u);
}

TEST(LabelSearch, WorksAcrossBlockBoundaries)
{
    for (std::size_t pad = 50; pad <= 75; ++pad) {
        std::string doc = "{" + std::string(pad, ' ') + R"("needle": 1})";
        auto hits = find_all(doc, "needle");
        ASSERT_EQ(hits.size(), 1u) << "pad " << pad;
        EXPECT_EQ(hits[0], pad + 1) << "pad " << pad;
        // Scalar kernels must agree.
        EXPECT_EQ(find_all(doc, "needle", simd::Level::scalar), hits);
    }
}

TEST(LabelSearch, EscapedLabelForms)
{
    std::string doc = R"({"he said \"hi\"": 1})";
    EXPECT_EQ(find_all(doc, R"(he said \"hi\")").size(), 1u);
    EXPECT_TRUE(find_all(doc, "he said ").empty());
}

TEST(LabelSearch, ResumePointOnBlockBoundary)
{
    // First label in block 0, second label in block 1. Asking for a resume
    // point exactly on the 64-byte boundary used to produce floor == 64 (an
    // out-of-range shift for the receiver's resume mask); it must instead
    // park at the boundary block with floor 0.
    std::string doc = R"({"a": 1,)";
    doc += std::string(64 - doc.size(), ' ');
    doc += R"("a": 2, "a": 3})";
    PaddedString padded(doc);

    LabelSearch search(padded, simd::best_kernels(), "a");
    ASSERT_TRUE(search.next().has_value());
    ResumePoint point = search.resume_point_at(simd::kBlockSize);
    EXPECT_EQ(point.block_start, simd::kBlockSize);
    EXPECT_EQ(point.floor, 0);

    LabelSearch resumed(padded, simd::best_kernels(), "a");
    resumed.resume(point);
    auto hit = resumed.next();
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->quote_pos, 64u);
    ASSERT_TRUE(resumed.next().has_value());
    EXPECT_FALSE(resumed.next().has_value());
}

TEST(LabelSearch, ResumePointPastFinalPartialBlock)
{
    // A position at or past the 64-aligned end of the classified range
    // must yield a spent resume point, not a floor >= 64 over a stale
    // block. (Positions inside the final partial block keep their real
    // floor — candidates past the document end are already clipped.)
    std::string doc = R"({"a": 1, "b": 2})";
    PaddedString padded(doc);
    LabelSearch search(padded, simd::best_kernels(), "a");
    for (std::size_t pos :
         {simd::kBlockSize, simd::kBlockSize + 7, std::size_t{640}}) {
        LabelSearch probe(padded, simd::best_kernels(), "a");
        LabelSearch receiver(padded, simd::best_kernels(), "a");
        ResumePoint point = probe.resume_point_at(pos);
        // The floor is always a legal shift amount, and the point parks at
        // the aligned end — spent for every receiver.
        EXPECT_LT(point.floor, static_cast<int>(simd::kBlockSize))
            << "pos " << pos;
        EXPECT_GE(point.block_start, doc.size()) << "pos " << pos;
        receiver.resume(point);
        EXPECT_FALSE(receiver.next().has_value()) << "pos " << pos;
    }
    // A position inside the final partial block but past the document end
    // is inert: a legal floor, and nothing left to report.
    LabelSearch receiver(padded, simd::best_kernels(), "a");
    receiver.resume(search.resume_point_at(doc.size())); // floor == 16
    EXPECT_FALSE(receiver.next().has_value());
    // The original search still works after being used as a probe.
    EXPECT_TRUE(search.next().has_value());
}

TEST(LabelSearch, ResumeAcceptsFloor64Handoff)
{
    // An iterator that consumed bit 63 legitimately hands over floor == 64
    // ("block spent"); resume must clear the block's candidates and carry on
    // with the next block instead of shifting by 64.
    std::string doc = R"({"a": 1,)";
    doc += std::string(64 - doc.size(), ' ');
    doc += R"("a": 2})";
    PaddedString padded(doc);
    LabelSearch search(padded, simd::best_kernels(), "a");
    ResumePoint spent_first{0, classify::QuoteState{},
                            static_cast<int>(simd::kBlockSize)};
    search.resume(spent_first);
    auto hit = search.next();
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->quote_pos, 64u);
    EXPECT_FALSE(search.next().has_value());
}

TEST(LabelSearch, StopAndResume)
{
    std::string doc = R"({"a": {"x": 1}, "a": {"y": 2}, "a": 3})";
    PaddedString padded(doc);
    LabelSearch search(padded, simd::best_kernels(), "a");
    auto first = search.next();
    ASSERT_TRUE(first.has_value());
    // Hand the pipeline over at the value, then take it back; the next
    // occurrence must still be found.
    StructuralIterator iter(padded, simd::best_kernels());
    iter.resume(search.resume_point_at(first->colon_pos + 2));
    search.resume(iter.resume_point());
    auto second = search.next();
    ASSERT_TRUE(second.has_value());
    EXPECT_GT(second->quote_pos, first->quote_pos);
}

}  // namespace
}  // namespace descend
