/**
 * @file
 * Tests for the memmem-style label search underlying head-skipping: only
 * genuine member labels are reported — never string values, never
 * occurrences inside strings — across block boundaries.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "descend/engine/label_search.h"

namespace descend {
namespace {

std::vector<std::size_t> find_all(const std::string& document,
                                  const std::string& label,
                                  simd::Level level = simd::Level::avx2)
{
    PaddedString padded(document);
    LabelSearch search(padded, simd::kernels_for(level), label);
    std::vector<std::size_t> quotes;
    while (auto occurrence = search.next()) {
        quotes.push_back(occurrence->quote_pos);
    }
    return quotes;
}

TEST(LabelSearch, FindsMemberLabels)
{
    std::string doc = R"({"a": 1, "b": {"a": 2}})";
    auto hits = find_all(doc, "a");
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0], 1u);
    EXPECT_EQ(hits[1], 15u);
}

TEST(LabelSearch, IgnoresStringValues)
{
    // "a" as a value, and "a": inside a string, must not count.
    EXPECT_TRUE(find_all(R"(["a", "a"])", "a").empty());
    EXPECT_TRUE(find_all(R"({"x": "\"a\": 1"})", "a").empty());
    EXPECT_TRUE(find_all(R"({"x": "a"})", "a").empty());
    EXPECT_EQ(find_all(R"({"x": "\"a\": 1", "a": 2})", "a").size(), 1u);
}

TEST(LabelSearch, RequiresExactLabel)
{
    EXPECT_TRUE(find_all(R"({"ab": 1, "xa": 2})", "a").empty());
    EXPECT_EQ(find_all(R"({"ab": 1})", "ab").size(), 1u);
}

TEST(LabelSearch, ColonMayBeSeparatedByWhitespace)
{
    EXPECT_EQ(find_all("{\"a\"  \n\t: 1}", "a").size(), 1u);
}

TEST(LabelSearch, WorksAcrossBlockBoundaries)
{
    for (std::size_t pad = 50; pad <= 75; ++pad) {
        std::string doc = "{" + std::string(pad, ' ') + R"("needle": 1})";
        auto hits = find_all(doc, "needle");
        ASSERT_EQ(hits.size(), 1u) << "pad " << pad;
        EXPECT_EQ(hits[0], pad + 1) << "pad " << pad;
        // Scalar kernels must agree.
        EXPECT_EQ(find_all(doc, "needle", simd::Level::scalar), hits);
    }
}

TEST(LabelSearch, EscapedLabelForms)
{
    std::string doc = R"({"he said \"hi\"": 1})";
    EXPECT_EQ(find_all(doc, R"(he said \"hi\")").size(), 1u);
    EXPECT_TRUE(find_all(doc, "he said ").empty());
}

TEST(LabelSearch, StopAndResume)
{
    std::string doc = R"({"a": {"x": 1}, "a": {"y": 2}, "a": 3})";
    PaddedString padded(doc);
    LabelSearch search(padded, simd::best_kernels(), "a");
    auto first = search.next();
    ASSERT_TRUE(first.has_value());
    // Hand the pipeline over at the value, then take it back; the next
    // occurrence must still be found.
    StructuralIterator iter(padded, simd::best_kernels());
    iter.resume(search.resume_point_at(first->colon_pos + 2));
    search.resume(iter.resume_point());
    auto second = search.next();
    ASSERT_TRUE(second.has_value());
    EXPECT_GT(second->quote_pos, first->quote_pos);
}

}  // namespace
}  // namespace descend
