/**
 * @file
 * The observability layer (src/descend/obs): gating contract, registry
 * semantics, exact counters on hand-built documents, the block-attribution
 * invariant across every option combination, per-tier counter equivalence,
 * stream aggregation, and the JSON report schema.
 *
 * Every counter assertion sits inside `if constexpr (obs::kEnabled)` so the
 * same binary builds and passes under DESCEND_OBS=OFF — where the compile-
 * time checks at the top of this file verify the registry really collapsed
 * to an empty struct.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "descend/descend.h"
#include "descend/json/dom.h"

namespace {

using namespace descend;
using obs::Counter;

// --------------------------------------------------------------------------
// Gating contract: with the gate off the registry must be an empty struct
// (no counter storage in any object that embeds one); with it on, exactly
// one word per counter. Either way the API is complete, so call sites never
// see the gate.
#if DESCEND_OBS_ENABLED
static_assert(obs::kEnabled);
static_assert(sizeof(obs::Counters) == sizeof(std::uint64_t) * obs::kCounterCount);
static_assert(sizeof(obs::Timings) == sizeof(std::uint64_t) * obs::kPhaseCount);
#else
static_assert(!obs::kEnabled);
static_assert(sizeof(obs::Counters) == 1);
static_assert(sizeof(obs::Timings) == 1);
#endif
static_assert(obs::counter_is_gauge(Counter::kDepthStackMax));
static_assert(!obs::counter_is_gauge(Counter::kBlocksClassified));

RunStats run(const std::string& document, const std::string& query,
             EngineOptions options = {}, std::size_t* matches = nullptr)
{
    PaddedString padded(document);
    DescendEngine engine(automaton::CompiledQuery::compile(query), options);
    OffsetSink sink;
    RunStats stats = engine.run_with_stats(padded, sink);
    if (matches != nullptr) {
        *matches = sink.offsets().size();
    }
    return stats;
}

EngineOptions no_skips()
{
    EngineOptions options;
    options.leaf_skipping = false;
    options.child_skipping = false;
    options.sibling_skipping = false;
    options.head_skipping = false;
    return options;
}

void expect_invariant(const RunStats& stats, std::size_t document_bytes)
{
    if constexpr (obs::kEnabled) {
        EXPECT_EQ(obs::accounted_blocks(stats.counters),
                  obs::total_blocks(document_bytes));
    } else {
        EXPECT_EQ(obs::accounted_blocks(stats.counters), 0u);
    }
}

TEST(ObsRegistry, AddGetMergeAndGaugeSemantics)
{
    obs::Counters a;
    obs::Counters b;
    a.add(Counter::kChildSkips);
    a.add(Counter::kChildSkips, 4);
    a.raise(Counter::kDepthStackMax, 7);
    b.add(Counter::kChildSkips, 10);
    b.raise(Counter::kDepthStackMax, 3);
    b.raise(Counter::kDepthStackMax, 2);  // below the high-water mark: no-op
    a.merge(b);
    if constexpr (obs::kEnabled) {
        EXPECT_EQ(a.get(Counter::kChildSkips), 15u);     // sums
        EXPECT_EQ(a.get(Counter::kDepthStackMax), 7u);   // gauge: max, not 10
        EXPECT_EQ(b.get(Counter::kDepthStackMax), 3u);
    } else {
        EXPECT_EQ(a.get(Counter::kChildSkips), 0u);      // everything no-ops
        EXPECT_EQ(a.get(Counter::kDepthStackMax), 0u);
    }
}

TEST(ObsRegistry, CounterNamesAreStableAndUnique)
{
    std::vector<std::string> names;
    for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
        names.emplace_back(obs::counter_name(static_cast<Counter>(i)));
    }
    for (std::size_t i = 0; i < names.size(); ++i) {
        EXPECT_NE(names[i], "unknown");
        for (std::size_t j = i + 1; j < names.size(); ++j) {
            EXPECT_NE(names[i], names[j]);
        }
    }
    // Spot-check the schema anchors documented in DESIGN.md §4.6.
    EXPECT_STREQ(obs::counter_name(Counter::kBlocksClassified),
                 "blocks_classified");
    EXPECT_STREQ(obs::counter_name(Counter::kBlocksTail), "blocks_tail");
}

// --------------------------------------------------------------------------
// Exact counters on hand-built documents. The inputs are small enough to
// count structural characters by hand; the expectations below are those
// hand counts, not recorded engine output.

TEST(ObsCounters, NestedDocumentWithAllSkipsDisabled)
{
    // Unquoted structural characters: { : { : [ , ] } , : }  — 11 events,
    // of which 3 open ({, {, [). One 64-byte block; one ring fill of 8.
    const std::string doc = R"({"a": {"b": [1, 2]}, "c": 3})";
    std::size_t matches = 0;
    RunStats stats = run(doc, "$..zzz", no_skips(), &matches);
    EXPECT_TRUE(stats.status.ok());
    EXPECT_EQ(matches, 0u);
    expect_invariant(stats, doc.size());
    if constexpr (obs::kEnabled) {
        const obs::Counters& c = stats.counters;
        EXPECT_EQ(c.get(Counter::kStructuralEvents), 11u);
        EXPECT_EQ(c.get(Counter::kOpeningEvents), 3u);
        EXPECT_EQ(c.get(Counter::kBatchRefills), 1u);
        EXPECT_EQ(c.get(Counter::kBlocksClassified), 8u);
        EXPECT_EQ(c.get(Counter::kBlocksStructural), 1u);
        EXPECT_EQ(c.get(Counter::kBlocksTail), 0u);
        EXPECT_EQ(c.get(Counter::kChildSkips), 0u);
        EXPECT_EQ(c.get(Counter::kSiblingSkips), 0u);
        EXPECT_EQ(c.get(Counter::kHeadSkipJumps), 0u);
    }
}

TEST(ObsCounters, ChildSkipAttributesRejectedSubtreeBlocks)
{
    // A large rejected array ("skip") followed by the match: with child
    // skipping on, every block of the array is consumed by the depth
    // pipeline; with it off, the same blocks are walked structurally.
    std::string doc = "{\"skip\": [";
    for (int i = 0; i < 200; ++i) {
        doc += "111111, ";
    }
    doc += "0], \"a\": 1}";
    const std::size_t blocks = obs::total_blocks(doc.size());
    ASSERT_GE(blocks, 20u);

    std::size_t matches = 0;
    RunStats skipping = run(doc, "$.a", EngineOptions{}, &matches);
    EXPECT_TRUE(skipping.status.ok());
    EXPECT_EQ(matches, 1u);
    expect_invariant(skipping, doc.size());

    EngineOptions no_child;
    no_child.child_skipping = false;
    RunStats walking = run(doc, "$.a", no_child, &matches);
    EXPECT_TRUE(walking.status.ok());
    EXPECT_EQ(matches, 1u);
    expect_invariant(walking, doc.size());

    if constexpr (obs::kEnabled) {
        EXPECT_EQ(skipping.counters.get(Counter::kChildSkips), 1u);
        EXPECT_EQ(skipping.counters.get(Counter::kBlocksChildSkipped),
                  blocks - 1);
        EXPECT_EQ(skipping.counters.get(Counter::kBlocksStructural), 1u);
        // The ablated run touches every block structurally instead.
        EXPECT_EQ(walking.counters.get(Counter::kChildSkips), 0u);
        EXPECT_EQ(walking.counters.get(Counter::kBlocksChildSkipped), 0u);
        EXPECT_EQ(walking.counters.get(Counter::kBlocksStructural), blocks);
        // Child skipping also shields the main loop from the array's
        // commas: far fewer events consumed.
        EXPECT_LT(skipping.counters.get(Counter::kStructuralEvents),
                  walking.counters.get(Counter::kStructuralEvents));
    }
}

TEST(ObsCounters, HeadSkipAttributesBlocksToLabelSearch)
{
    // `$..rare` head-skips: the label search owns every block; the main
    // loop never consumes a structural event before the match.
    std::string doc = "{\"pad\": \"" + std::string(400, 'x') + "\", \"rare\": 1}";
    std::size_t matches = 0;
    RunStats stats = run(doc, "$..rare", EngineOptions{}, &matches);
    EXPECT_TRUE(stats.status.ok());
    EXPECT_EQ(matches, 1u);
    expect_invariant(stats, doc.size());
    if constexpr (obs::kEnabled) {
        const obs::Counters& c = stats.counters;
        EXPECT_EQ(c.get(Counter::kHeadSkipJumps), 1u);
        EXPECT_EQ(c.get(Counter::kLabelSearchCandidates), 1u);
        EXPECT_EQ(c.get(Counter::kLabelSearchHits), 1u);
        EXPECT_EQ(c.get(Counter::kBlocksHeadSkip),
                  obs::total_blocks(doc.size()));
        EXPECT_EQ(c.get(Counter::kBlocksStructural), 0u);
        EXPECT_EQ(c.get(Counter::kStructuralEvents), 0u);
    }
}

TEST(ObsCounters, TrailingWhitespaceBooksAsTailBlocks)
{
    // 8 content bytes + 200 spaces = 4 blocks; the run finishes inside
    // block 0, so finish() books the remaining 3 as tail.
    const std::string doc = std::string("{\"a\": 1}") + std::string(200, ' ');
    std::size_t matches = 0;
    RunStats stats = run(doc, "$.a", EngineOptions{}, &matches);
    EXPECT_TRUE(stats.status.ok());
    EXPECT_EQ(matches, 1u);
    expect_invariant(stats, doc.size());
    if constexpr (obs::kEnabled) {
        EXPECT_EQ(obs::total_blocks(doc.size()), 4u);
        EXPECT_EQ(stats.counters.get(Counter::kBlocksStructural), 1u);
        EXPECT_EQ(stats.counters.get(Counter::kBlocksTail), 3u);
    }
}

TEST(ObsCounters, RunStatsAccessorsMirrorTheRegistry)
{
    RunStats stats = run(R"({"a": {"b": 1}})", "$.a.b");
    if constexpr (obs::kEnabled) {
        EXPECT_EQ(stats.events(),
                  stats.counters.get(Counter::kStructuralEvents));
        EXPECT_EQ(stats.child_skips(),
                  stats.counters.get(Counter::kChildSkips));
        EXPECT_EQ(stats.sibling_skips(),
                  stats.counters.get(Counter::kSiblingSkips));
        EXPECT_EQ(stats.head_skip_jumps(),
                  stats.counters.get(Counter::kHeadSkipJumps));
        EXPECT_EQ(stats.within_skips(),
                  stats.counters.get(Counter::kWithinSkips));
        EXPECT_EQ(stats.max_stack(),
                  stats.counters.get(Counter::kDepthStackMax));
    } else {
        EXPECT_EQ(stats.events(), 0u);
        EXPECT_EQ(stats.max_stack(), 0u);
    }
}

// --------------------------------------------------------------------------
// The block-attribution invariant — accounted == ceil(bytes / 64) — must
// hold for every option combination and every run outcome, including
// malformed documents that fail mid-stream. (The fuzzer checks the same
// invariant over millions of mutants; this is the deterministic core.)

TEST(ObsInvariant, HoldsAcrossOptionCombinationsAndOutcomes)
{
    std::string big_nested = "{\"deep\": " + std::string(40, '[') +
                             std::string(40, ']') + ", \"a\": [1, 2, 3]}";
    const std::vector<std::string> documents = {
        R"({"a": 1})",
        R"({"a": {"b": [1, 2]}, "c": 3})",
        "{\"pad\": \"" + std::string(300, 'y') + "\", \"rare\": [1]}",
        std::string("[1, 2, 3]") + std::string(500, ' '),
        big_nested,
        // Malformed: unbalanced, truncated, and garbage tails.
        R"({"a": [1, 2})",
        R"({"a": 1}]]]])",
        std::string(100, '{'),
        "",
    };
    const std::vector<std::string> queries = {"$.a", "$..rare", "$..a[1]",
                                              "$.*"};
    for (int leaf = 0; leaf < 2; ++leaf) {
        for (int child = 0; child < 2; ++child) {
            for (int head = 0; head < 2; ++head) {
                for (int within = 0; within < 2; ++within) {
                    EngineOptions options;
                    options.leaf_skipping = leaf != 0;
                    options.child_skipping = child != 0;
                    options.head_skipping = head != 0;
                    options.label_within_skipping = within != 0;
                    for (const std::string& doc : documents) {
                        for (const std::string& query : queries) {
                            RunStats stats = run(doc, query, options);
                            expect_invariant(stats, doc.size());
                        }
                    }
                }
            }
        }
    }
}

// --------------------------------------------------------------------------
// Counter values are a property of the algorithm, not of the kernel tier:
// forcing each SIMD level must reproduce identical registries. (Unavailable
// tiers fall back to the best supported one, so this is safe on any host.)

TEST(ObsTiers, CountersAreTierInvariant)
{
    std::string doc = "{\"skip\": [";
    for (int i = 0; i < 100; ++i) {
        doc += "{\"k\": \"vvvvvv\"}, ";
    }
    doc += "{}], \"a\": {\"b\": [1, 2, 3]}, \"rare\": 7}";
    const std::vector<std::string> queries = {"$.a.b", "$..rare", "$..b[2]"};
    for (const std::string& query : queries) {
        EngineOptions base;
        base.simd = simd::Level::scalar;
        std::size_t scalar_matches = 0;
        RunStats reference = run(doc, query, base, &scalar_matches);
        EXPECT_TRUE(reference.status.ok());
        for (simd::Level level : {simd::Level::avx2, simd::Level::avx512}) {
            EngineOptions options;
            options.simd = level;
            std::size_t matches = 0;
            RunStats stats = run(doc, query, options, &matches);
            EXPECT_EQ(matches, scalar_matches);
            expect_invariant(stats, doc.size());
            if constexpr (obs::kEnabled) {
                for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
                    Counter id = static_cast<Counter>(i);
                    EXPECT_EQ(stats.counters.get(id), reference.counters.get(id))
                        << query << " @ " << simd::level_name(level) << ": "
                        << obs::counter_name(id);
                }
            }
        }
    }
}

// --------------------------------------------------------------------------
// Stream aggregation: per-shard registries merge into one stream-level
// registry that is independent of the thread count, and failed records are
// tallied per status code.

TEST(ObsStream, AggregationIsThreadCountInvariant)
{
    std::string input;
    for (int i = 0; i < 64; ++i) {
        input += "{\"a\": " + std::to_string(i) + ", \"b\": [1, 2]}\n";
    }
    PaddedString padded(input);
    auto run_stream = [&](std::size_t threads) {
        stream::StreamOptions options;
        options.threads = threads;
        options.records_per_batch = 4;
        stream::StreamExecutor executor(
            automaton::CompiledQuery::compile("$.a"), options);
        stream::CountingStreamSink sink;
        return executor.run(padded, sink);
    };
    stream::StreamResult serial = run_stream(1);
    stream::StreamResult parallel = run_stream(4);
    EXPECT_EQ(serial.records, 64u);
    EXPECT_EQ(serial.matches, 64u);
    EXPECT_EQ(parallel.matches, 64u);
    EXPECT_EQ(serial.record_blocks, parallel.record_blocks);
    if constexpr (obs::kEnabled) {
        EXPECT_EQ(obs::accounted_blocks(serial.counters), serial.record_blocks);
        EXPECT_EQ(obs::accounted_blocks(parallel.counters),
                  parallel.record_blocks);
        for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
            Counter id = static_cast<Counter>(i);
            if (obs::counter_is_gauge(id)) {
                continue;  // gauges merge by max: shard-layout dependent
            }
            EXPECT_EQ(serial.counters.get(id), parallel.counters.get(id))
                << obs::counter_name(id);
        }
    } else {
        EXPECT_EQ(serial.record_blocks, 0u);
    }
}

TEST(ObsStream, ErrorTallyCountsFailedRecordsByStatus)
{
    // Records 1 and 3 are structurally damaged; skip-record policy keeps
    // going and tallies them under their status codes (ungated: the tally
    // works even in DESCEND_OBS=OFF builds).
    const std::string input =
        "{\"a\": 1}\n"
        "{\"a\": [}\n"
        "{\"a\": 2}\n"
        "{\"a\": [1, 2}\n"
        "{\"a\": 3}\n";
    PaddedString padded(input);
    stream::StreamOptions options;
    options.threads = 1;
    stream::StreamExecutor executor(automaton::CompiledQuery::compile("$.a"),
                                    options);
    stream::CountingStreamSink sink;
    stream::StreamResult result = executor.run(padded, sink);
    EXPECT_EQ(result.records, 5u);
    EXPECT_EQ(result.matches, 3u);
    EXPECT_EQ(result.failed_records, 2u);
    std::uint64_t tallied = 0;
    for (std::size_t i = 0; i < kStatusCodeCount; ++i) {
        tallied += result.error_tally[i];
    }
    EXPECT_EQ(tallied, 2u);
    EXPECT_EQ(result.error_tally[static_cast<std::size_t>(StatusCode::kOk)], 0u);
}

// --------------------------------------------------------------------------
// JSON report: the export must be valid JSON with the documented keys, and
// the "obs" flag must reflect the build gate.

TEST(ObsReport, RunReportIsValidJsonWithSchemaKeys)
{
    const std::string doc = R"({"a": {"b": 1}})";
    std::size_t matches = 0;
    obs::RunReport report;
    report.stats = run(doc, "$..b", EngineOptions{}, &matches);
    report.engine = "descend-test";
    report.document_bytes = doc.size();
    report.matches = matches;
    std::string text = obs::to_json(report);

    json::Document parsed = json::parse(text);
    const json::Value& root = parsed.root();
    ASSERT_TRUE(root.is_object());
    ASSERT_NE(root.find("obs"), nullptr);
    EXPECT_EQ(root.find("obs")->as_bool(), obs::kEnabled);
    EXPECT_EQ(root.find("engine")->as_string(), "descend-test");
    EXPECT_EQ(root.find("matches")->as_number(), 1.0);
    const json::Value* blocks = root.find("blocks");
    ASSERT_NE(blocks, nullptr);
    EXPECT_EQ(blocks->find("accounted")->as_number(),
              blocks->find("total")->as_number());
    const json::Value* counters = root.find("counters");
    ASSERT_NE(counters, nullptr);
    if constexpr (obs::kEnabled) {
        EXPECT_EQ(counters->members().size(), obs::kCounterCount);
        ASSERT_NE(counters->find("blocks_classified"), nullptr);
        EXPECT_GT(counters->find("blocks_classified")->as_number(), 0.0);
    } else {
        EXPECT_TRUE(counters->members().empty());
    }
}

TEST(ObsReport, StreamReportCarriesErrorsObject)
{
    obs::StreamReport report;
    report.engine = "descend";
    report.document_bytes = 128;
    report.records = 3;
    report.matches = 2;
    report.failed_records = 1;
    report.error_tally[static_cast<std::size_t>(
        StatusCode::kUnbalancedStructure)] = 1;
    std::string text = obs::to_json(report);
    json::Document parsed = json::parse(text);
    const json::Value& root = parsed.root();
    ASSERT_NE(root.find("errors"), nullptr);
    const json::Value* errors = root.find("errors");
    ASSERT_EQ(errors->members().size(), 1u);
    EXPECT_EQ(errors->members().front().key,
              status_name(StatusCode::kUnbalancedStructure));
    EXPECT_EQ(errors->members().front().value->as_number(), 1.0);
    EXPECT_EQ(root.find("records")->as_number(), 3.0);
    EXPECT_EQ(root.find("failed_records")->as_number(), 1.0);
}

}  // namespace
