/**
 * @file
 * Run-governance tests: RunBudget/CancelToken semantics, pre-expired and
 * mid-run governance across every engine, deterministic stream-budget
 * behaviour at every thread count, the kRetryScalar degradation policy,
 * and the exact-boundary behaviour of every EngineLimits knob.
 *
 * Determinism discipline: no test here depends on wall-clock timing. A
 * "tripped" budget is always one whose deadline is already in the past (or
 * whose CancelToken is already set) before the run starts, so the outcome
 * is a pure function of the code path, not of scheduling.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "descend/baselines/dom_engine.h"
#include "descend/baselines/ski_engine.h"
#include "descend/baselines/surfer_engine.h"
#include "descend/descend.h"
#include "descend/multi/multi_engine.h"
#include "descend/stream/stream_executor.h"
#include "descend/util/budget.h"
#include "test_helpers.h"

namespace descend {
namespace {

/** A budget whose deadline passed long before the run starts. */
RunBudget expired_budget(const CancelToken* token = nullptr)
{
    return {RunBudget::Clock::now() - std::chrono::hours(1), token};
}

// ---------------------------------------------------------------------------
// RunBudget / CancelToken / BudgetGate unit semantics.
// ---------------------------------------------------------------------------

TEST(RunBudgetTest, DefaultIsInactiveAndNeverTrips)
{
    RunBudget budget;
    EXPECT_FALSE(budget.active());
    EXPECT_EQ(budget.exceeded(), StatusCode::kOk);
}

TEST(RunBudgetTest, ExpiredDeadlineTripsAsDeadlineExceeded)
{
    RunBudget budget = expired_budget();
    EXPECT_TRUE(budget.active());
    EXPECT_EQ(budget.exceeded(), StatusCode::kDeadlineExceeded);
}

TEST(RunBudgetTest, CancelTokenTripsAsCancelled)
{
    CancelToken token;
    RunBudget budget = RunBudget::with_cancel(&token);
    EXPECT_TRUE(budget.active());
    EXPECT_EQ(budget.exceeded(), StatusCode::kOk);
    token.cancel();
    EXPECT_EQ(budget.exceeded(), StatusCode::kCancelled);
    token.reset();
    EXPECT_EQ(budget.exceeded(), StatusCode::kOk);
}

TEST(RunBudgetTest, CancelWinsOverExpiredDeadline)
{
    CancelToken token;
    token.cancel();
    RunBudget budget = expired_budget(&token);
    EXPECT_EQ(budget.exceeded(), StatusCode::kCancelled);
}

TEST(RunBudgetTest, TightenedKeepsMinDeadlineAndToken)
{
    CancelToken token;
    RunBudget wide = RunBudget::within_ms(1000000, &token);
    RunBudget::Clock::time_point earlier =
        RunBudget::Clock::now() - std::chrono::seconds(1);
    RunBudget tight = wide.tightened(earlier);
    EXPECT_EQ(tight.deadline, earlier);
    EXPECT_EQ(tight.cancel, &token);
    // Tightening with a *later* point keeps the original deadline.
    RunBudget same = tight.tightened(wide.deadline);
    EXPECT_EQ(same.deadline, earlier);
}

TEST(RunBudgetTest, BudgetGateSamplesAtStrideGranularity)
{
    RunBudget inactive;
    BudgetGate idle(inactive, 4);
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(idle.poll(), StatusCode::kOk);
    }
    RunBudget expired = expired_budget();
    BudgetGate gate(expired, 4);
    // The first three polls ride the stride; the fourth samples the clock.
    EXPECT_EQ(gate.poll(), StatusCode::kOk);
    EXPECT_EQ(gate.poll(), StatusCode::kOk);
    EXPECT_EQ(gate.poll(), StatusCode::kOk);
    EXPECT_EQ(gate.poll(), StatusCode::kDeadlineExceeded);
}

TEST(RunBudgetTest, GovernanceCodesAreClassified)
{
    EXPECT_TRUE(is_governance(StatusCode::kDeadlineExceeded));
    EXPECT_TRUE(is_governance(StatusCode::kCancelled));
    EXPECT_FALSE(is_governance(StatusCode::kOk));
    EXPECT_FALSE(is_governance(StatusCode::kDepthLimit));
    EngineStatus status{StatusCode::kCancelled, 7};
    EXPECT_TRUE(status.is_governance());
    EXPECT_FALSE(status.is_limit());
}

// ---------------------------------------------------------------------------
// Pre-expired governance across every engine: the run must fail before any
// work, with the pinned status {code, 0}, for every tier and configuration.
// ---------------------------------------------------------------------------

const char* kDoc = R"({"a":{"b":1},"c":[2,3]})";
const char* kDescendantQuery = "$..b";

TEST(GovernanceEngineTest, PreExpiredDeadlineFailsAtOffsetZeroEverywhere)
{
    PaddedString padded(kDoc);
    EngineStatus expected{StatusCode::kDeadlineExceeded, 0};
    for (EngineOptions options : testing::engine_configurations()) {
        options.budget = expired_budget();
        DescendEngine engine(
            automaton::CompiledQuery::compile(kDescendantQuery), options);
        CountSink sink;
        EXPECT_EQ(engine.run(padded, sink), expected)
            << "descend[" << testing::describe(options) << "]";
        EXPECT_EQ(sink.count(), 0u);
    }

    DomEngine dom(query::Query::parse(kDescendantQuery), {}, expired_budget());
    CountSink dom_sink;
    EXPECT_EQ(dom.run(padded, dom_sink), expected) << "dom";

    SurferEngine surfer(automaton::CompiledQuery::compile(kDescendantQuery),
                        {}, expired_budget());
    CountSink surfer_sink;
    EXPECT_EQ(surfer.run(padded, surfer_sink), expected) << "surfer";

    SkiEngine ski(query::Query::parse("$.a"), simd::default_level(), {},
                  expired_budget());
    CountSink ski_sink;
    EXPECT_EQ(ski.run(padded, ski_sink), expected) << "jsonski";

    for (simd::Level level :
         {simd::Level::scalar, simd::Level::avx2, simd::Level::avx512}) {
        EngineOptions options;
        options.simd = level;
        options.budget = expired_budget();
        multi::MultiDescendEngine fused(
            multi::MultiQuery::compile(
                std::vector<std::string>{"$..b", "$.*"}),
            options);
        multi::CollectingMultiSink sink(2);
        EXPECT_EQ(fused.run(padded, sink), expected)
            << "multi[" << simd::level_name(level) << "]";
    }
}

TEST(GovernanceEngineTest, PreCancelledFailsAtOffsetZeroEverywhere)
{
    PaddedString padded(kDoc);
    CancelToken token;
    token.cancel();
    RunBudget cancelled = RunBudget::with_cancel(&token);
    EngineStatus expected{StatusCode::kCancelled, 0};
    for (EngineOptions options : testing::engine_configurations()) {
        options.budget = cancelled;
        DescendEngine engine(
            automaton::CompiledQuery::compile(kDescendantQuery), options);
        CountSink sink;
        EXPECT_EQ(engine.run(padded, sink), expected)
            << "descend[" << testing::describe(options) << "]";
    }
    DomEngine dom(query::Query::parse(kDescendantQuery), {}, cancelled);
    CountSink dom_sink;
    EXPECT_EQ(dom.run(padded, dom_sink), expected) << "dom";
    SurferEngine surfer(automaton::CompiledQuery::compile(kDescendantQuery),
                        {}, cancelled);
    CountSink surfer_sink;
    EXPECT_EQ(surfer.run(padded, surfer_sink), expected) << "surfer";
    SkiEngine ski(query::Query::parse("$.a"), simd::default_level(), {},
                  cancelled);
    CountSink ski_sink;
    EXPECT_EQ(ski.run(padded, ski_sink), expected) << "jsonski";
}

TEST(GovernanceEngineTest, InactiveBudgetMatchesUngovernedRun)
{
    // The default EngineOptions carries an inactive budget: results must be
    // identical to the pre-governance behaviour, match-for-match.
    std::string doc = testing::oracle_offsets(kDescendantQuery, kDoc).empty()
                          ? std::string(kDoc)
                          : std::string(kDoc);
    std::vector<std::size_t> expected =
        testing::oracle_offsets(kDescendantQuery, doc);
    ASSERT_FALSE(expected.empty());
    testing::expect_all_engines_agree(kDescendantQuery, doc);
}

/** A sink that fires the cancel token on the first delivered match. */
struct CancellingSink final : MatchSink {
    explicit CancellingSink(CancelToken& token) : token_(&token) {}
    void on_match(std::size_t) override
    {
        ++matches;
        token_->cancel();
    }
    CancelToken* token_;
    std::size_t matches = 0;
};

TEST(GovernanceEngineTest, MidRunCancellationStopsTheRun)
{
    // An early match in a long document: the sink cancels on delivery and
    // the engine must stop at a subsequent batch refill with kCancelled.
    // Deterministic: the cancel happens on this thread, before the poll.
    std::string doc = "{\"b\":1";
    for (int i = 0; i < 200; ++i) {
        doc += ",\"k" + std::to_string(i) + "\":\"" +
               std::string(40, 'x') + "\"";
    }
    doc += "}";
    PaddedString padded(doc);
    for (EngineOptions options : testing::engine_configurations()) {
        CancelToken token;
        options.budget = RunBudget::with_cancel(&token);
        DescendEngine engine(automaton::CompiledQuery::compile("$..b"),
                             options);
        CancellingSink sink(token);
        EngineStatus status = engine.run(padded, sink);
        EXPECT_EQ(status.code, StatusCode::kCancelled)
            << "descend[" << testing::describe(options)
            << "] got " << to_string(status);
        EXPECT_EQ(sink.matches, 1u)
            << "descend[" << testing::describe(options) << "]";
    }
}

// ---------------------------------------------------------------------------
// Stream governance: deterministic across thread counts.
// ---------------------------------------------------------------------------

std::string ndjson_stream(std::size_t records)
{
    std::string text;
    for (std::size_t i = 0; i < records; ++i) {
        text += "{\"id\":" + std::to_string(i) + "}\n";
    }
    return text;
}

TEST(GovernanceStreamTest, PreExpiredStreamBudgetIsIdenticalAtEveryThreadCount)
{
    std::string text = ndjson_stream(8);
    PaddedString padded(text);
    for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        stream::StreamOptions options;
        options.threads = threads;
        options.records_per_batch = 2;
        options.stream_budget = expired_budget();
        stream::StreamExecutor executor =
            stream::StreamExecutor::for_query("$..id", options);
        stream::CollectingStreamSink sink;
        stream::StreamResult result = executor.run(padded, sink);
        SCOPED_TRACE("threads=" + std::to_string(threads));
        EXPECT_TRUE(result.budget_stopped);
        EXPECT_EQ(result.records, 8u);
        EXPECT_EQ(result.matches, 0u);
        EXPECT_EQ(result.failed_records, 1u);
        EXPECT_EQ(result.first_error_record, 0u);
        EXPECT_EQ(result.first_error,
                  (EngineStatus{StatusCode::kDeadlineExceeded, 0}));
        EXPECT_EQ(result.first_error_span_begin, 0u);
        ASSERT_EQ(sink.errors().size(), 1u);
        EXPECT_EQ(sink.errors().front().record, 0u);
        EXPECT_EQ(sink.errors().front().status,
                  (EngineStatus{StatusCode::kDeadlineExceeded, 0}));
        EXPECT_TRUE(sink.matches().empty());
        EXPECT_EQ(result.error_tally[static_cast<std::size_t>(
                      StatusCode::kDeadlineExceeded)],
                  1u);
    }
}

TEST(GovernanceStreamTest, PreCancelledStreamBudgetSynthesizesCancelled)
{
    std::string text = ndjson_stream(5);
    PaddedString padded(text);
    CancelToken token;
    token.cancel();
    for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
        stream::StreamOptions options;
        options.threads = threads;
        options.stream_budget = RunBudget::with_cancel(&token);
        stream::StreamExecutor executor =
            stream::StreamExecutor::for_query("$..id", options);
        stream::CollectingStreamSink sink;
        stream::StreamResult result = executor.run(padded, sink);
        SCOPED_TRACE("threads=" + std::to_string(threads));
        EXPECT_TRUE(result.budget_stopped);
        EXPECT_EQ(result.first_error_record, 0u);
        EXPECT_EQ(result.first_error,
                  (EngineStatus{StatusCode::kCancelled, 0}));
    }
}

TEST(GovernanceStreamTest, GenerousBudgetsLeaveTheStreamUntouched)
{
    std::string text = ndjson_stream(6);
    PaddedString padded(text);
    stream::StreamOptions options;
    options.threads = 2;
    options.stream_budget = RunBudget::within_ms(1000000);
    options.record_budget_ms = 1000000;
    stream::StreamExecutor executor =
        stream::StreamExecutor::for_query("$..id", options);
    stream::CollectingStreamSink sink;
    stream::StreamResult result = executor.run(padded, sink);
    EXPECT_FALSE(result.budget_stopped);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.records, 6u);
    EXPECT_EQ(result.matches, 6u);
    EXPECT_EQ(result.retried_records, 0u);
}

TEST(GovernanceStreamTest, RetryScalarReRunsFailedRecordsOnScalarTier)
{
    // Record 2 is malformed: under kRetryScalar it is re-run on the scalar
    // tier, the scalar verdict (the same failure) is reported, and the
    // stream otherwise behaves like kSkipRecord. The tiers agree on the
    // failure, so no divergence is tallied.
    std::string text = "{\"id\":0}\n{\"id\":1}\n{\"id\":\n{\"id\":3}\n";
    PaddedString padded(text);
    DescendEngine scalar_reference = [] {
        EngineOptions scalar;
        scalar.simd = simd::Level::scalar;
        return DescendEngine(automaton::CompiledQuery::compile("$..id"),
                             scalar);
    }();
    PaddedString bad_record("{\"id\":");
    EngineStatus scalar_verdict =
        scalar_reference.offsets_checked(bad_record).status;
    ASSERT_FALSE(scalar_verdict.ok());

    for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
        stream::StreamOptions options;
        options.threads = threads;
        options.policy = stream::ErrorPolicy::kRetryScalar;
        stream::StreamExecutor executor =
            stream::StreamExecutor::for_query("$..id", options);
        stream::CollectingStreamSink sink;
        stream::StreamResult result = executor.run(padded, sink);
        SCOPED_TRACE("threads=" + std::to_string(threads));
        EXPECT_EQ(result.records, 4u);
        EXPECT_EQ(result.matches, 3u);
        EXPECT_EQ(result.failed_records, 1u);
        EXPECT_EQ(result.retried_records, 1u);
        EXPECT_EQ(result.tier_divergences, 0u);
        ASSERT_EQ(sink.errors().size(), 1u);
        EXPECT_EQ(sink.errors().front().record, 2u);
        EXPECT_EQ(sink.errors().front().status, scalar_verdict);
    }
}

TEST(GovernanceStreamTest, GovernanceFailuresAreNeverRetried)
{
    std::string text = ndjson_stream(4);
    PaddedString padded(text);
    stream::StreamOptions options;
    options.policy = stream::ErrorPolicy::kRetryScalar;
    options.stream_budget = expired_budget();
    stream::StreamExecutor executor =
        stream::StreamExecutor::for_query("$..id", options);
    stream::CollectingStreamSink sink;
    stream::StreamResult result = executor.run(padded, sink);
    EXPECT_TRUE(result.budget_stopped);
    EXPECT_EQ(result.retried_records, 0u);
    EXPECT_EQ(result.tier_divergences, 0u);
}

TEST(GovernanceStreamTest, AbsoluteErrorPositionIsSpanBeginPlusOffset)
{
    // The second record is structurally damaged; the stream result must
    // report its span start so span_begin + intra-record offset gives the
    // absolute stream position. The expected status comes from a
    // sequential run over the isolated record — the stream adds only the
    // span-begin translation.
    std::string first = "{\"id\":0}";
    std::string bad = "{\"id\":]}";
    std::string text = first + "\n" + bad + "\n{\"id\":2}\n";
    PaddedString padded(text);
    DescendEngine engine = DescendEngine::for_query("$..id");
    PaddedString bad_copy(bad);
    EngineStatus reference = engine.offsets_checked(bad_copy).status;
    ASSERT_FALSE(reference.ok());

    stream::StreamExecutor executor =
        stream::StreamExecutor::for_query("$..id", {});
    stream::CollectingStreamSink sink;
    stream::StreamResult result = executor.run(padded, sink);
    ASSERT_EQ(result.failed_records, 1u);
    EXPECT_EQ(result.first_error_record, 1u);
    EXPECT_EQ(result.first_error, reference);
    EXPECT_EQ(result.first_error_span_begin, first.size() + 1);
    EXPECT_EQ(result.first_error_span_begin + result.first_error.offset,
              first.size() + 1 + reference.offset);
}

// ---------------------------------------------------------------------------
// Exact limit boundaries: each EngineLimits knob at its boundary value must
// pass, and one past it must fail with the pinned {code, offset} — across
// the DOM oracle, the surfer, JSONSki and every descend configuration.
// ---------------------------------------------------------------------------

void expect_status_everywhere(const std::string& query, EngineLimits limits,
                              const PaddedString& padded,
                              EngineStatus expected, bool exempt_head_skip)
{
    auto compiled = automaton::CompiledQuery::compile(query);
    DomEngine dom(query::Query::parse(query), limits);
    CountSink dom_sink;
    EXPECT_EQ(dom.run(padded, dom_sink), expected) << "dom, query " << query;

    SurferEngine surfer(compiled, limits);
    CountSink surfer_sink;
    EXPECT_EQ(surfer.run(padded, surfer_sink), expected)
        << "surfer, query " << query;

    for (EngineOptions options : testing::engine_configurations()) {
        bool head_skip_active =
            options.head_skipping && compiled.head_skip_label().has_value();
        if (exempt_head_skip && head_skip_active) {
            continue;  // head-skip depth is subdocument-relative (DESIGN.md)
        }
        options.limits = limits;
        DescendEngine engine(compiled, options);
        CountSink sink;
        EXPECT_EQ(engine.run(padded, sink), expected)
            << "descend[" << testing::describe(options) << "], query "
            << query;
    }
}

TEST(LimitBoundaryTest, DocumentSizeExactlyAtLimitPasses)
{
    std::string doc = kDoc;
    PaddedString padded(doc);
    EngineLimits at;
    at.max_document_size = doc.size();
    expect_status_everywhere("$.*", at, padded, EngineStatus{}, false);

    EngineLimits over;
    over.max_document_size = doc.size() - 1;
    expect_status_everywhere(
        "$.*", over, padded,
        EngineStatus{StatusCode::kSizeLimit, doc.size() - 1}, false);

    // JSONSki shares the preflight.
    SkiEngine at_ski(query::Query::parse("$.a"), simd::default_level(), at);
    CountSink s1;
    EXPECT_EQ(at_ski.run(padded, s1), EngineStatus{});
    SkiEngine over_ski(query::Query::parse("$.a"), simd::default_level(), over);
    CountSink s2;
    EXPECT_EQ(over_ski.run(padded, s2),
              (EngineStatus{StatusCode::kSizeLimit, doc.size() - 1}));
}

TEST(LimitBoundaryTest, DepthExactlyAtLimitPasses)
{
    // kDoc nests exactly two levels; the first depth-2 opener is the '{'
    // of {"b":1} at offset 5.
    PaddedString padded(kDoc);
    EngineLimits at;
    at.max_depth = 2;
    expect_status_everywhere("$.*", at, padded, EngineStatus{}, true);

    EngineLimits over;
    over.max_depth = 1;
    expect_status_everywhere("$.*", over, padded,
                             EngineStatus{StatusCode::kDepthLimit, 5}, true);

    SkiEngine at_ski(query::Query::parse("$.a"), simd::default_level(), at);
    CountSink s1;
    EXPECT_EQ(at_ski.run(padded, s1), EngineStatus{});
    SkiEngine over_ski(query::Query::parse("$.a"), simd::default_level(), over);
    CountSink s2;
    EXPECT_EQ(over_ski.run(padded, s2),
              (EngineStatus{StatusCode::kDepthLimit, 5}));
}

TEST(LimitBoundaryTest, MatchCountBoundaries)
{
    PaddedString padded(kDoc);
    // $.* matches the values of "a" (offset 5) and "c" (offset 17).
    ASSERT_EQ(testing::oracle_offsets("$.*", kDoc),
              (std::vector<std::size_t>{5, 17}));

    EngineLimits two;
    two.max_match_count = 2;
    expect_status_everywhere("$.*", two, padded, EngineStatus{}, false);

    EngineLimits one;
    one.max_match_count = 1;
    expect_status_everywhere("$.*", one, padded,
                             EngineStatus{StatusCode::kMatchLimit, 17}, false);

    EngineLimits zero;
    zero.max_match_count = 0;
    expect_status_everywhere("$.*", zero, padded,
                             EngineStatus{StatusCode::kMatchLimit, 5}, false);

    // Descendant query with a single match: boundary at exactly one.
    ASSERT_EQ(testing::oracle_offsets("$..b", kDoc),
              (std::vector<std::size_t>{10}));
    EngineLimits single;
    single.max_match_count = 1;
    expect_status_everywhere("$..b", single, padded, EngineStatus{}, false);
    EngineLimits none;
    none.max_match_count = 0;
    expect_status_everywhere("$..b", none, padded,
                             EngineStatus{StatusCode::kMatchLimit, 10}, false);
}

}  // namespace
}  // namespace descend
