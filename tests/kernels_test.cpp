/**
 * @file
 * Differential tests for the batched single-load classification kernels.
 *
 * Three layers of pinning:
 *  - the scalar classify_batch is checked against an independent per-byte
 *    state machine (naive string/escape tracking) on random and adversarial
 *    batches;
 *  - every compiled SIMD tier (AVX2, AVX-512 — via the hardware-gated raw
 *    accessors, which ignore the DESCEND_SIMD_LEVEL cap) is pinned
 *    bit-for-bit against the scalar reference, including carry threading
 *    across batch boundaries;
 *  - a per-tier engine sweep cross-checks match sets against the DOM
 *    oracle, so a kernel bug that survives the mask tests still surfaces.
 *
 * Adversarial inputs cover the cases the carry logic can get wrong: escape
 * runs crossing 64-byte block AND 512-byte batch boundaries, quotes at
 * positions 0/63 of a block, and bytes >= 0x80 (shuffle MSB rule).
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "descend/simd/dispatch.h"
#include "descend/workloads/builder.h"
#include "test_helpers.h"

namespace descend::simd {
namespace {

/** Hardware-supported SIMD tiers, excluding scalar. */
std::vector<const Kernels*> compiled_tiers()
{
    std::vector<const Kernels*> tiers;
    if (avx2_available()) {
        tiers.push_back(&avx2_kernels());
    }
    if (avx512_available()) {
        tiers.push_back(&avx512_kernels());
    }
    return tiers;
}

/** Per-byte reference for the quote pipeline, independent of util/bits.h. */
struct NaiveState {
    bool escaped = false;    // next byte is escaped
    bool in_string = false;  // current position is inside a string
};

/** Classifies @p bytes per byte into BlockMasks, threading @p state. */
std::vector<BlockMasks> naive_batch(const std::uint8_t* bytes, std::size_t blocks,
                                    NaiveState& state)
{
    std::vector<BlockMasks> out(blocks);
    for (std::size_t b = 0; b < blocks; ++b) {
        BlockMasks& masks = out[b];
        std::memset(&masks, 0, sizeof(masks));
        masks.entry_escaped = state.escaped;
        masks.entry_in_string = state.in_string ? ~std::uint64_t{0} : 0;
        for (std::size_t i = 0; i < kBlockSize; ++i) {
            std::uint8_t byte = bytes[b * kBlockSize + i];
            std::uint64_t bit = 1ULL << i;
            bool is_escaped = state.escaped;
            state.escaped = !is_escaped && byte == '\\';
            if (byte == '"' && !is_escaped) {
                masks.unescaped_quotes |= bit;
                state.in_string = !state.in_string;
            }
            if (state.in_string) {
                masks.in_string |= bit;
            }
            switch (byte) {
                case '{': masks.open_braces |= bit; break;
                case '}': masks.close_braces |= bit; break;
                case '[': masks.open_brackets |= bit; break;
                case ']': masks.close_brackets |= bit; break;
                case ',': masks.commas |= bit; break;
                case ':': masks.colons |= bit; break;
                default: break;
            }
        }
    }
    return out;
}

void expect_masks_equal(const BlockMasks& expected, const BlockMasks& actual,
                        const std::string& context)
{
    EXPECT_EQ(expected.unescaped_quotes, actual.unescaped_quotes) << context;
    EXPECT_EQ(expected.in_string, actual.in_string) << context;
    EXPECT_EQ(expected.open_braces, actual.open_braces) << context;
    EXPECT_EQ(expected.close_braces, actual.close_braces) << context;
    EXPECT_EQ(expected.open_brackets, actual.open_brackets) << context;
    EXPECT_EQ(expected.close_brackets, actual.close_brackets) << context;
    EXPECT_EQ(expected.commas, actual.commas) << context;
    EXPECT_EQ(expected.colons, actual.colons) << context;
    EXPECT_EQ(expected.entry_in_string, actual.entry_in_string) << context;
    EXPECT_EQ(expected.entry_escaped, actual.entry_escaped) << context;
}

/** The adversarial byte streams, each a whole number of batches long. */
std::vector<std::vector<std::uint8_t>> adversarial_streams()
{
    std::vector<std::vector<std::uint8_t>> streams;

    // Escape runs of every length 1..130 ending exactly at block and batch
    // boundaries, each followed by a quote (escaped iff the run is odd).
    for (std::size_t boundary : {kBlockSize, kBatchSize}) {
        for (std::size_t run = 1; run <= 130; ++run) {
            std::vector<std::uint8_t> bytes(2 * kBatchSize, 'x');
            // Place the run so it ends at the boundary; the quote lands on
            // the first byte of the next block/batch.
            if (run <= boundary) {
                std::memset(bytes.data() + boundary - run, '\\', run);
                bytes[boundary] = '"';
                bytes[boundary + 1] = '"';
                streams.push_back(std::move(bytes));
            }
        }
    }

    // Solid backslashes across both batches (odd total forces a live carry
    // through every boundary).
    streams.emplace_back(2 * kBatchSize, '\\');

    // Quotes at positions 0 and 63 of every block.
    {
        std::vector<std::uint8_t> bytes(2 * kBatchSize, ' ');
        for (std::size_t b = 0; b < bytes.size() / kBlockSize; ++b) {
            bytes[b * kBlockSize] = '"';
            bytes[b * kBlockSize + 63] = '"';
        }
        streams.push_back(std::move(bytes));
    }

    // Bytes >= 0x80 interleaved with structurals and quotes.
    {
        std::vector<std::uint8_t> bytes(2 * kBatchSize);
        static const std::uint8_t kCycle[] = {0x80, '{', 0xff, '"', 0xbb, '}',
                                              '\\', 0x5b, 0xdd, ']', ',', ':'};
        for (std::size_t i = 0; i < bytes.size(); ++i) {
            bytes[i] = kCycle[i % sizeof(kCycle)];
        }
        streams.push_back(std::move(bytes));
    }

    // A string opened in batch 0 and closed deep in batch 1 (in-string
    // carry across the batch boundary), with bracket noise inside.
    {
        std::vector<std::uint8_t> bytes(2 * kBatchSize, 'a');
        bytes[10] = '"';
        for (std::size_t i = 11; i < kBatchSize + 200; i += 7) {
            bytes[i] = "{}[]:,"[i % 6];
        }
        bytes[kBatchSize + 300] = '"';
        streams.push_back(std::move(bytes));
    }

    return streams;
}

std::vector<std::uint8_t> random_stream(workloads::Rng& rng, std::size_t batches,
                                        bool json_biased)
{
    std::vector<std::uint8_t> bytes(batches * kBatchSize);
    static const char kJsonChars[] = "{}[]:,\"\\ \tabc123";
    for (auto& byte : bytes) {
        byte = json_biased ? static_cast<std::uint8_t>(
                                 kJsonChars[rng.below(sizeof(kJsonChars) - 1)])
                           : static_cast<std::uint8_t>(rng.next() & 0xff);
    }
    return bytes;
}

/** Runs @p kernels over the whole stream, threading one carry. */
std::vector<BlockMasks> batch_all(const Kernels& kernels,
                                  const std::vector<std::uint8_t>& bytes)
{
    std::vector<BlockMasks> out(bytes.size() / kBlockSize);
    BatchCarry carry;
    for (std::size_t batch = 0; batch * kBatchSize < bytes.size(); ++batch) {
        kernels.classify_batch(bytes.data() + batch * kBatchSize, carry,
                               out.data() + batch * kBatchBlocks);
    }
    return out;
}

TEST(BatchKernels, ScalarMatchesNaiveOnAdversarialStreams)
{
    for (const auto& bytes : adversarial_streams()) {
        NaiveState naive_state;
        std::vector<BlockMasks> expected =
            naive_batch(bytes.data(), bytes.size() / kBlockSize, naive_state);
        std::vector<BlockMasks> actual = batch_all(scalar_kernels(), bytes);
        ASSERT_EQ(expected.size(), actual.size());
        for (std::size_t b = 0; b < expected.size(); ++b) {
            expect_masks_equal(expected[b], actual[b],
                               "scalar vs naive, block " + std::to_string(b));
        }
    }
}

TEST(BatchKernels, ScalarMatchesNaiveOnRandomStreams)
{
    workloads::Rng rng(101);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::uint8_t> bytes = random_stream(rng, 3, trial % 2 == 0);
        NaiveState naive_state;
        std::vector<BlockMasks> expected =
            naive_batch(bytes.data(), bytes.size() / kBlockSize, naive_state);
        std::vector<BlockMasks> actual = batch_all(scalar_kernels(), bytes);
        for (std::size_t b = 0; b < expected.size(); ++b) {
            expect_masks_equal(expected[b], actual[b],
                               "scalar vs naive, trial " + std::to_string(trial) +
                                   " block " + std::to_string(b));
        }
    }
}

TEST(BatchKernels, CompiledTiersMatchScalarOnAdversarialStreams)
{
    for (const Kernels* tier : compiled_tiers()) {
        for (const auto& bytes : adversarial_streams()) {
            std::vector<BlockMasks> expected = batch_all(scalar_kernels(), bytes);
            std::vector<BlockMasks> actual = batch_all(*tier, bytes);
            for (std::size_t b = 0; b < expected.size(); ++b) {
                expect_masks_equal(expected[b], actual[b],
                                   std::string(tier->name) + " vs scalar, block " +
                                       std::to_string(b));
            }
        }
    }
}

TEST(BatchKernels, CompiledTiersMatchScalarOnRandomStreams)
{
    workloads::Rng rng(103);
    for (const Kernels* tier : compiled_tiers()) {
        for (int trial = 0; trial < 300; ++trial) {
            std::vector<std::uint8_t> bytes = random_stream(rng, 2, trial % 2 == 0);
            std::vector<BlockMasks> expected = batch_all(scalar_kernels(), bytes);
            std::vector<BlockMasks> actual = batch_all(*tier, bytes);
            for (std::size_t b = 0; b < expected.size(); ++b) {
                expect_masks_equal(expected[b], actual[b],
                                   std::string(tier->name) + " vs scalar, trial " +
                                       std::to_string(trial) + " block " +
                                       std::to_string(b));
            }
        }
    }
}

TEST(BatchKernels, CarryThreadsAcrossBatchCalls)
{
    // Classifying one contiguous stream in separate calls must agree with
    // classifying it with per-call fresh output rings: the only state
    // between calls is BatchCarry, exercised here with a string and an
    // escape run both spanning the call boundary.
    std::vector<std::uint8_t> bytes(2 * kBatchSize, 'x');
    bytes[100] = '"';                 // string opens in call 1...
    bytes[kBatchSize - 1] = '\\';     // ...and an escape run crosses the seam
    bytes[kBatchSize] = '"';          // escaped quote: does NOT close
    bytes[kBatchSize + 77] = '"';     // closes here
    for (const Kernels* tier : compiled_tiers()) {
        std::vector<BlockMasks> split = batch_all(*tier, bytes);
        // Whole stream via scalar in one conceptual pass (the reference).
        std::vector<BlockMasks> reference = batch_all(scalar_kernels(), bytes);
        for (std::size_t b = 0; b < reference.size(); ++b) {
            expect_masks_equal(reference[b], split[b],
                               std::string(tier->name) + " split-call block " +
                                   std::to_string(b));
        }
        // The escaped quote must not appear; the closing one must.
        EXPECT_EQ(split[kBatchBlocks].unescaped_quotes & 1ULL, 0u) << tier->name;
        EXPECT_NE(split[kBatchBlocks + 1].unescaped_quotes & (1ULL << 13), 0u)
            << tier->name;
    }
}

TEST(BatchKernels, PerBlockKernelsMatchScalarOnAllTiers)
{
    // The per-block kernels (eq/classify/prefix_xor) of every compiled tier
    // against scalar — same spirit as simd_test's AVX2 pinning, generalized
    // over the tier list so AVX-512 gets identical coverage.
    workloads::Rng rng(107);
    const Kernels& scalar = scalar_kernels();
    for (const Kernels* tier : compiled_tiers()) {
        for (int trial = 0; trial < 500; ++trial) {
            std::vector<std::uint8_t> bytes = random_stream(rng, 1, trial % 2 == 0);
            const std::uint8_t* block = bytes.data();
            for (std::uint8_t value : std::initializer_list<std::uint8_t>{
                     '"', '\\', '{', '}', '[', ']', ':', ',', 0x00, 0xff, 0x80}) {
                ASSERT_EQ(scalar.eq_mask(block, value), tier->eq_mask(block, value))
                    << tier->name << " value " << int(value);
            }
            std::uint8_t ltab[16];
            std::uint8_t utab[16];
            for (auto& entry : ltab) {
                entry = static_cast<std::uint8_t>(rng.next() & 0xff);
            }
            for (auto& entry : utab) {
                entry = static_cast<std::uint8_t>(rng.next() & 0xff);
            }
            ASSERT_EQ(scalar.classify_eq(block, ltab, utab),
                      tier->classify_eq(block, ltab, utab))
                << tier->name;
            ASSERT_EQ(scalar.classify_or(block, ltab, utab),
                      tier->classify_or(block, ltab, utab))
                << tier->name;
            ASSERT_EQ(scalar.classify_eq_masked(block, ltab, utab),
                      tier->classify_eq_masked(block, ltab, utab))
                << tier->name;
            ASSERT_EQ(scalar.classify_or_masked(block, ltab, utab),
                      tier->classify_or_masked(block, ltab, utab))
                << tier->name;
            std::uint64_t mask = rng.next();
            ASSERT_EQ(scalar.prefix_xor(mask), tier->prefix_xor(mask)) << tier->name;
        }
    }
}

TEST(BatchKernels, EngineSweepAgreesWithOracleAtEveryTier)
{
    // A compact engine sweep per tier: documents exercising strings with
    // escapes near block boundaries, toggled commas/colons, skips and
    // head-skipping; the per-tier ctest entries (DESCEND_SIMD_LEVEL=...)
    // run the full suites on top of this.
    const std::pair<const char*, const char*> cases[] = {
        {"$..x", R"({"a": {"x": 1, "b": [{"x": 2}, 3]}, "x": [4]})"},
        {"$.a[*].b", R"({"a": [{"b": 1}, {"c": 2}, {"b": [3]}]})"},
        {"$..person.name",
         R"({"person": {"name": "a\\\"b", "other": "\\"}, "p": {"person": {"name": 7}}})"},
        {"$..values[2]", R"({"values": [0, 1, {"values": [0, 1, 2, 3]}, 3]})"},
    };
    std::string long_doc = R"({"pad": ")" + std::string(300, '\\') + "\\\"" +
                           std::string(120, 'y') + R"(", "x": 42})";
    for (simd::Level level :
         {simd::Level::scalar, simd::Level::avx2, simd::Level::avx512}) {
        EngineOptions options;
        options.simd = level;
        for (const auto& [query, document] : cases) {
            EXPECT_EQ(testing::engine_offsets(query, document, options),
                      testing::oracle_offsets(query, document))
                << level_name(level) << " on " << query;
        }
        EXPECT_EQ(testing::engine_offsets("$..x", long_doc, options),
                  testing::oracle_offsets("$..x", long_doc))
            << level_name(level) << " on escape-heavy document";
    }
}

}  // namespace
}  // namespace descend::simd
