/**
 * @file
 * Tests for the JSON substrate: strict DOM parsing (valid and invalid
 * inputs), escape handling, source offsets, serializer round-trips, and
 * the SAX tokenizer.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "descend/json/dom.h"
#include "descend/json/sax.h"
#include "descend/json/serializer.h"
#include "descend/util/errors.h"
#include "descend/workloads/random_json.h"

namespace descend::json {
namespace {

TEST(JsonParser, Atoms)
{
    EXPECT_EQ(parse("42").root().as_number(), 42);
    EXPECT_EQ(parse("-17.5").root().as_number(), -17.5);
    EXPECT_EQ(parse("2e3").root().as_number(), 2000);
    EXPECT_EQ(parse("1.25E-2").root().as_number(), 0.0125);
    EXPECT_TRUE(parse("true").root().as_bool());
    EXPECT_FALSE(parse("false").root().as_bool());
    EXPECT_TRUE(parse("null").root().is_null());
    EXPECT_EQ(parse(R"("hi")").root().as_string(), "hi");
    EXPECT_EQ(parse("  42  ").root().as_number(), 42);
}

TEST(JsonParser, Containers)
{
    Document doc = parse(R"({"a": [1, {"b": null}], "c": "x"})");
    const Value& root = doc.root();
    ASSERT_TRUE(root.is_object());
    ASSERT_EQ(root.members().size(), 2u);
    const Value* a = root.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->is_array());
    ASSERT_EQ(a->elements().size(), 2u);
    EXPECT_EQ(a->elements()[0]->as_number(), 1);
    EXPECT_NE(a->elements()[1]->find("b"), nullptr);
    EXPECT_EQ(root.find("c")->as_string(), "x");
    EXPECT_EQ(root.find("missing"), nullptr);
}

TEST(JsonParser, SourceOffsets)
{
    std::string text = R"({"a":  [10, {"b": 3}]})";
    Document doc = parse(text);
    EXPECT_EQ(doc.root().source_offset(), 0u);
    const Value* a = doc.root().find("a");
    EXPECT_EQ(text[a->source_offset()], '[');
    EXPECT_EQ(text[a->elements()[0]->source_offset()], '1');
    EXPECT_EQ(text[a->elements()[1]->source_offset()], '{');
}

TEST(JsonParser, RawKeysPreserveEscapes)
{
    Document doc = parse(R"({"a\"b": 1})");
    ASSERT_EQ(doc.root().members().size(), 1u);
    EXPECT_EQ(doc.root().members()[0].key, R"(a\"b)");
}

TEST(JsonParser, DuplicateKeysPreserved)
{
    Document doc = parse(R"({"k": 1, "k": 2})");
    EXPECT_EQ(doc.root().members().size(), 2u);
}

TEST(JsonParser, TreeMetrics)
{
    Document doc = parse(R"({"a": [1, 2], "b": {"c": {}}})");
    // Nodes: root, a-array, 1, 2, b-object, c-object = 6.
    EXPECT_EQ(doc.root().subtree_size(), 6u);
    // Depth: root -> b -> c = 3.
    EXPECT_EQ(doc.root().subtree_depth(), 3u);
}

TEST(JsonParser, RejectsMalformedInput)
{
    for (const char* bad :
         {"", "{", "}", "[1,", "[1 2]", "{\"a\" 1}", "{\"a\":}", "{a:1}",
          "01", "1.", "1e", "+1", "tru", "nul", "\"unterminated", "[1,]",
          "{\"a\":1,}", "\"bad \\q escape\"", "\"bad \\u12 escape\"", "1 2",
          "{\"a\":1}}", "[\x01]", "\"raw\nnewline\""}) {
        EXPECT_THROW(parse(bad), ParseError) << "input: " << bad;
        EXPECT_FALSE(is_valid(bad)) << "input: " << bad;
    }
}

TEST(JsonParser, DepthLimit)
{
    std::string deep(5000, '[');
    deep += "1";
    deep.append(5000, ']');
    EXPECT_THROW(parse(deep), ParseError);
    ParseOptions relaxed;
    relaxed.max_depth = 6000;
    EXPECT_NO_THROW(parse(deep, relaxed));
}

TEST(JsonParser, ErrorsCarryPositions)
{
    try {
        parse("[1, 2, x]");
        FAIL() << "expected ParseError";
    } catch (const ParseError& error) {
        EXPECT_EQ(error.position(), 7u);
    }
}

TEST(JsonEscapes, Unescape)
{
    EXPECT_EQ(unescape(R"(plain)"), "plain");
    EXPECT_EQ(unescape(R"(a\"b)"), "a\"b");
    EXPECT_EQ(unescape(R"(a\\b)"), "a\\b");
    EXPECT_EQ(unescape(R"(\n\t\r\b\f\/)"), "\n\t\r\b\f/");
    EXPECT_EQ(unescape(R"(\u0041)"), "A");
    EXPECT_EQ(unescape(R"(\u00e9)"), "\xc3\xa9");      // e-acute in UTF-8
    EXPECT_EQ(unescape(R"(\u20ac)"), "\xe2\x82\xac");  // euro sign
    EXPECT_THROW(unescape("\\"), ParseError);
    EXPECT_THROW(unescape("\\q"), ParseError);
    EXPECT_THROW(unescape("\\u12"), ParseError);
    EXPECT_THROW(unescape("\\uzzzz"), ParseError);
}

TEST(JsonEscapes, EscapeRoundTrip)
{
    for (const char* text : {"plain", "with \"quotes\"", "back\\slash",
                             "ctl\x01\x1f", "tab\tnewline\n"}) {
        EXPECT_EQ(unescape(escape(text)), text);
    }
}

TEST(JsonSerializer, CompactRoundTrip)
{
    const char* text = R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null}})";
    Document doc = parse(text);
    EXPECT_EQ(serialize(doc.root()), text);
}

TEST(JsonSerializer, PrettyOutputReparses)
{
    Document doc = parse(R"({"a": [1, {"b": "x"}], "c": []})");
    SerializeOptions pretty;
    pretty.indent = 2;
    std::string out = serialize(doc.root(), pretty);
    EXPECT_NE(out.find('\n'), std::string::npos);
    Document again = parse(out);
    EXPECT_EQ(serialize(again.root()), serialize(doc.root()));
}

TEST(JsonSerializer, EscapesStrings)
{
    Document doc = parse(R"(["say \"hi\"", "a\\b"])");
    EXPECT_EQ(serialize(doc.root()), R"(["say \"hi\"","a\\b"])");
}

TEST(JsonSerializer, RandomDocumentRoundTrips)
{
    // parse -> serialize -> parse -> serialize must be a fixpoint, for
    // random documents of every shape.
    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
        workloads::RandomJsonOptions options;
        options.seed = seed;
        options.max_depth = 7;
        options.nasty_string_chance = 40;
        std::string text = workloads::random_json(options);
        Document first = parse(text);
        std::string once = serialize(first.root());
        Document second = parse(once);
        std::string twice = serialize(second.root());
        ASSERT_EQ(once, twice) << "seed " << seed;
        // Structure is preserved exactly.
        ASSERT_EQ(first.root().subtree_size(), second.root().subtree_size());
        ASSERT_EQ(first.root().subtree_depth(), second.root().subtree_depth());
    }
}

TEST(JsonParser, NumberRoundTrips)
{
    for (const char* literal : {"0", "-0", "7", "-13", "3.5", "-0.125",
                                "1e3", "2.5e-2", "123456789", "1.5E+2"}) {
        Document doc = parse(literal);
        double value = doc.root().as_number();
        Document again = parse(serialize(doc.root()));
        EXPECT_EQ(again.root().as_number(), value) << literal;
    }
}


class RecordingHandler : public SaxHandler {
public:
    std::vector<std::string> events;

    void on_object_start(std::size_t) override { events.push_back("{"); }
    void on_object_end(std::size_t) override { events.push_back("}"); }
    void on_array_start(std::size_t) override { events.push_back("["); }
    void on_array_end(std::size_t) override { events.push_back("]"); }
    void on_key(std::string_view key, std::size_t) override
    {
        events.push_back("key:" + std::string(key));
    }
    void on_atom(std::string_view atom, std::size_t) override
    {
        events.push_back("atom:" + std::string(atom));
    }
};

TEST(JsonSax, EventStream)
{
    RecordingHandler handler;
    sax_parse(R"({"a": [1, "x"], "b": {"c": null}})", handler);
    std::vector<std::string> expected = {
        "{",      "key:a",  "[", "atom:1", "atom:x", "]",
        "key:b",  "{",      "key:c", "atom:null", "}", "}",
    };
    EXPECT_EQ(handler.events, expected);
}

TEST(JsonSax, StringValuesVsKeys)
{
    RecordingHandler handler;
    // A string value that is NOT followed by a colon stays an atom, even
    // when it looks like a key.
    sax_parse(R"(["k", {"k": "v"}])", handler);
    std::vector<std::string> expected = {"[", "atom:k", "{", "key:k",
                                         "atom:v", "}", "]"};
    EXPECT_EQ(handler.events, expected);
}

TEST(JsonSax, EscapedQuotesInStrings)
{
    RecordingHandler handler;
    sax_parse(R"({"a": "x\"y"})", handler);
    std::vector<std::string> expected = {"{", "key:a", R"(atom:x\"y)", "}"};
    EXPECT_EQ(handler.events, expected);
}

}  // namespace
}  // namespace descend::json
