/**
 * @file
 * Shared test helpers: run a query through every engine configuration and
 * demand byte-identical match sets.
 */
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "descend/baselines/dom_engine.h"
#include "descend/baselines/surfer_engine.h"
#include "descend/descend.h"

namespace descend::testing {

/** Match offsets from the DOM oracle. */
inline std::vector<std::size_t> oracle_offsets(const std::string& query,
                                               const std::string& document)
{
    DomEngine oracle(query::Query::parse(query));
    PaddedString padded(document);
    return oracle.offsets(padded);
}

/** Match offsets from the main engine with the given options. */
inline std::vector<std::size_t> engine_offsets(const std::string& query,
                                               const std::string& document,
                                               EngineOptions options = {})
{
    DescendEngine engine(automaton::CompiledQuery::compile(query), options);
    PaddedString padded(document);
    return engine.offsets(padded);
}

/** Every interesting engine configuration to cross-check. */
inline std::vector<EngineOptions> engine_configurations()
{
    std::vector<EngineOptions> configurations;
    for (simd::Level level :
         {simd::Level::avx512, simd::Level::avx2, simd::Level::scalar}) {
        // Full paper configuration.
        EngineOptions all;
        all.simd = level;
        configurations.push_back(all);
        // Each skip disabled in isolation.
        for (int which = 0; which < 4; ++which) {
            EngineOptions opts;
            opts.simd = level;
            opts.leaf_skipping = which != 0;
            opts.child_skipping = which != 1;
            opts.sibling_skipping = which != 2;
            opts.head_skipping = which != 3;
            configurations.push_back(opts);
        }
        // Everything off: the plain depth-stack simulation.
        EngineOptions none;
        none.simd = level;
        none.leaf_skipping = false;
        none.child_skipping = false;
        none.sibling_skipping = false;
        none.head_skipping = false;
        configurations.push_back(none);
        // The Section 4.5 within-element label skip extension, alone and
        // combined with head-skipping disabled (its heaviest use).
        EngineOptions within;
        within.simd = level;
        within.label_within_skipping = true;
        configurations.push_back(within);
        EngineOptions within_no_head = within;
        within_no_head.head_skipping = false;
        configurations.push_back(within_no_head);
    }
    return configurations;
}

inline std::string describe(const EngineOptions& options)
{
    std::string description = simd::level_name(options.simd);
    description += options.leaf_skipping ? "+leaf" : "-leaf";
    description += options.child_skipping ? "+child" : "-child";
    description += options.sibling_skipping ? "+sibling" : "-sibling";
    description += options.head_skipping ? "+head" : "-head";
    description += options.label_within_skipping ? "+within" : "";
    return description;
}

/**
 * Asserts that the DOM oracle, the surfer baseline, and the main engine in
 * every configuration agree on the complete match set.
 */
inline void expect_all_engines_agree(const std::string& query,
                                     const std::string& document)
{
    SCOPED_TRACE("query: " + query);
    SCOPED_TRACE("document: " +
                 (document.size() <= 300 ? document
                                         : document.substr(0, 300) + "..."));
    std::vector<std::size_t> expected = oracle_offsets(query, document);

    PaddedString padded(document);
    SurferEngine surfer(automaton::CompiledQuery::compile(query));
    OffsetSink surfer_sink;
    EXPECT_EQ(surfer.run(padded, surfer_sink), EngineStatus{})
        << "engine: surfer reported a non-ok status on well-formed input";
    EXPECT_EQ(surfer_sink.offsets(), expected) << "engine: surfer";

    for (const EngineOptions& options : engine_configurations()) {
        DescendEngine engine(automaton::CompiledQuery::compile(query), options);
        OffsetSink sink;
        EXPECT_EQ(engine.run(padded, sink), EngineStatus{})
            << "engine: descend [" << describe(options)
            << "] reported a non-ok status on well-formed input";
        EXPECT_EQ(sink.offsets(), expected)
            << "engine: descend [" << describe(options) << "]";
    }
}

/** Shorthand: assert the match count from the oracle and all engines. */
inline void expect_count(const std::string& query, const std::string& document,
                         std::size_t expected_count)
{
    ASSERT_EQ(oracle_offsets(query, document).size(), expected_count)
        << "oracle disagrees with the test's expectation for " << query;
    expect_all_engines_agree(query, document);
}

}  // namespace descend::testing
