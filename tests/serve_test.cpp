/**
 * @file
 * descend-serve tests: the wire protocol's incremental decoder (round
 * trips, chunked and pipelined feeds, every malformed-frame class as a
 * structured status), the compiled-automaton cache (hit/miss/eviction,
 * limit-keyed entries, eviction safety under outstanding references), the
 * dispatcher (all three request modes against direct engine runs, tenant
 * governance that can only tighten, deterministic cancellation), and one
 * socket-level happy path against a live Server.
 *
 * Determinism discipline: governance tests use pre-cancelled tokens or
 * already-expired deadlines, never wall-clock races.
 */
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "descend/descend.h"
#include "descend/engine/scratch.h"
#include "descend/multi/multi_engine.h"
#include "descend/serve/dispatch.h"
#include "descend/serve/protocol.h"
#include "descend/serve/query_cache.h"
#include "descend/serve/server.h"
#include "descend/simd/dispatch.h"
#include "descend/util/budget.h"

namespace descend::serve {
namespace {

Request make_request(std::string query, std::string body,
                     RequestMode mode = RequestMode::kSingle,
                     std::uint32_t flags = kWantOffsets)
{
    Request request;
    request.mode = mode;
    request.flags = flags;
    request.query = std::move(query);
    request.body = std::move(body);
    return request;
}

/** Feeds the whole buffer in one call. */
FrameReader::State feed_all(FrameReader& reader,
                            const std::vector<std::uint8_t>& bytes)
{
    return reader.feed(bytes.data(), bytes.size());
}

// ---------------------------------------------------------------------------
// Protocol: encode/decode round trips.
// ---------------------------------------------------------------------------

TEST(ServeProtocolTest, RequestRoundTripPreservesEveryField)
{
    Request original = make_request("$..a.b", "{\"a\": {\"b\": 1}}");
    original.mode = RequestMode::kNdjson;
    original.flags = kWantOffsets | kWantStats;
    original.deadline_ms = 1234;
    original.max_depth = 7;
    original.max_matches = 99;

    FrameReader reader;
    ASSERT_EQ(feed_all(reader, encode_request(original)),
              FrameReader::State::kReady);
    Request decoded = reader.take_request();
    EXPECT_EQ(decoded.mode, original.mode);
    EXPECT_EQ(decoded.flags, original.flags);
    EXPECT_EQ(decoded.deadline_ms, original.deadline_ms);
    EXPECT_EQ(decoded.max_depth, original.max_depth);
    EXPECT_EQ(decoded.max_matches, original.max_matches);
    EXPECT_EQ(decoded.query, original.query);
    EXPECT_EQ(decoded.body, original.body);
    EXPECT_EQ(reader.state(), FrameReader::State::kNeedMore);
}

TEST(ServeProtocolTest, EmptyQueryAndBodyRoundTrip)
{
    FrameReader reader;
    ASSERT_EQ(feed_all(reader, encode_request(make_request("", ""))),
              FrameReader::State::kReady);
    Request decoded = reader.take_request();
    EXPECT_TRUE(decoded.query.empty());
    EXPECT_TRUE(decoded.body.empty());
}

TEST(ServeProtocolTest, ResponseRoundTripPreservesEveryField)
{
    Response original;
    original.serve_status = ServeStatus::kOk;
    original.engine_status = {StatusCode::kMatchLimit, 42};
    original.flags = kCacheHit;
    original.match_count = 3;
    original.offsets = {5, 17, 29};
    original.stats_json = "{\"matches\": 3}";

    std::vector<std::uint8_t> wire = encode_response(original);
    Response decoded;
    std::size_t consumed = 0;
    ASSERT_TRUE(decode_response(wire.data(), wire.size(), decoded, consumed));
    EXPECT_EQ(consumed, wire.size());
    EXPECT_EQ(decoded.serve_status, original.serve_status);
    EXPECT_EQ(decoded.engine_status.code, original.engine_status.code);
    EXPECT_EQ(decoded.engine_status.offset, original.engine_status.offset);
    EXPECT_TRUE(decoded.cache_hit());
    EXPECT_EQ(decoded.match_count, original.match_count);
    EXPECT_EQ(decoded.offsets, original.offsets);
    EXPECT_EQ(decoded.stats_json, original.stats_json);
}

TEST(ServeProtocolTest, PartialResponseDoesNotDecode)
{
    Response original;
    original.offsets = {1, 2, 3};
    std::vector<std::uint8_t> wire = encode_response(original);
    Response decoded;
    std::size_t consumed = 7;
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
        EXPECT_FALSE(decode_response(wire.data(), cut, decoded, consumed));
    }
}

// ---------------------------------------------------------------------------
// Protocol: chunked, pipelined, truncated, malformed.
// ---------------------------------------------------------------------------

TEST(ServeProtocolTest, OneByteAtATimeFeedReachesReady)
{
    Request original = make_request("$..x", "{\"x\": true}");
    std::vector<std::uint8_t> wire = encode_request(original);
    FrameReader reader;
    for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
        ASSERT_EQ(reader.feed(&wire[i], 1), FrameReader::State::kNeedMore)
            << "byte " << i;
    }
    ASSERT_EQ(reader.feed(&wire[wire.size() - 1], 1),
              FrameReader::State::kReady);
    EXPECT_EQ(reader.take_request().query, "$..x");
}

TEST(ServeProtocolTest, PipelinedFramesDecodeBackToBack)
{
    std::vector<std::uint8_t> wire = encode_request(make_request("$..a", "1"));
    std::vector<std::uint8_t> second =
        encode_request(make_request("$..b", "2"));
    wire.insert(wire.end(), second.begin(), second.end());

    FrameReader reader;
    ASSERT_EQ(feed_all(reader, wire), FrameReader::State::kReady);
    EXPECT_EQ(reader.take_request().query, "$..a");
    // take_request() re-parses the leftover bytes: the second frame must be
    // ready with no further feed.
    ASSERT_EQ(reader.state(), FrameReader::State::kReady);
    EXPECT_EQ(reader.take_request().query, "$..b");
    EXPECT_EQ(reader.state(), FrameReader::State::kNeedMore);
}

TEST(ServeProtocolTest, TruncatedFrameIsAStructuredError)
{
    std::vector<std::uint8_t> wire = encode_request(make_request("$..a", "{}"));
    FrameReader reader;
    ASSERT_EQ(reader.feed(wire.data(), wire.size() - 1),
              FrameReader::State::kNeedMore);
    ASSERT_EQ(reader.finish(), FrameReader::State::kError);
    EXPECT_EQ(reader.error(), ServeStatus::kTruncatedFrame);
}

TEST(ServeProtocolTest, FinishBetweenFramesIsACleanNoop)
{
    FrameReader reader;
    EXPECT_EQ(reader.finish(), FrameReader::State::kNeedMore);
    std::vector<std::uint8_t> wire = encode_request(make_request("$..a", ""));
    ASSERT_EQ(feed_all(reader, wire), FrameReader::State::kReady);
    reader.take_request();
    EXPECT_EQ(reader.finish(), FrameReader::State::kNeedMore);
}

TEST(ServeProtocolTest, GarbageFailsFastOnBadMagic)
{
    FrameReader reader;
    const std::uint8_t garbage[2] = {0xde, 0xad};
    // Bad magic is detectable from the first bytes — no need to buffer a
    // whole header before rejecting.
    ASSERT_EQ(reader.feed(garbage, 2), FrameReader::State::kError);
    EXPECT_EQ(reader.error(), ServeStatus::kBadMagic);
}

struct HeaderMutation {
    std::size_t offset;
    std::uint8_t value;
    ServeStatus expected;
};

TEST(ServeProtocolTest, EveryHeaderFieldViolationHasItsStatus)
{
    const HeaderMutation mutations[] = {
        {4, 0xff, ServeStatus::kBadVersion},   // version
        {6, 0x77, ServeStatus::kBadMode},      // mode
        {32, 0x01, ServeStatus::kBadReserved}, // reserved
    };
    for (const HeaderMutation& mutation : mutations) {
        std::vector<std::uint8_t> wire =
            encode_request(make_request("$..a", "{}"));
        wire[mutation.offset] = mutation.value;
        FrameReader reader;
        ASSERT_EQ(feed_all(reader, wire), FrameReader::State::kError)
            << "offset " << mutation.offset;
        EXPECT_EQ(reader.error(), mutation.expected)
            << "offset " << mutation.offset;
    }
}

TEST(ServeProtocolTest, OversizedLengthsRejectedFromHeaderAlone)
{
    FrameLimits limits;
    limits.max_query_bytes = 8;
    limits.max_body_bytes = 16;

    // query_len = 9 > 8: the reader must fail on the 44 header bytes,
    // before any payload arrives.
    std::vector<std::uint8_t> wire =
        encode_request(make_request("123456789", "{}"));
    FrameReader reader(limits);
    ASSERT_EQ(reader.feed(wire.data(), kRequestHeaderSize),
              FrameReader::State::kError);
    EXPECT_EQ(reader.error(), ServeStatus::kQueryTooLarge);

    std::vector<std::uint8_t> big_body =
        encode_request(make_request("$..a", std::string(17, 'x')));
    FrameReader body_reader(limits);
    ASSERT_EQ(body_reader.feed(big_body.data(), kRequestHeaderSize),
              FrameReader::State::kError);
    EXPECT_EQ(body_reader.error(), ServeStatus::kBodyTooLarge);
}

TEST(ServeProtocolTest, ErrorsAreStickyAcrossFurtherValidBytes)
{
    FrameReader reader;
    const std::uint8_t garbage[4] = {1, 2, 3, 4};
    ASSERT_EQ(reader.feed(garbage, 4), FrameReader::State::kError);
    std::vector<std::uint8_t> valid = encode_request(make_request("$..a", ""));
    EXPECT_EQ(feed_all(reader, valid), FrameReader::State::kError);
    EXPECT_EQ(reader.error(), ServeStatus::kBadMagic);
}

TEST(ServeProtocolTest, SplitQuerySetSkipsBlanksAndToleratesCr)
{
    std::vector<std::string> queries =
        split_query_set("$..a\r\n\n$..b\n$..c\n");
    ASSERT_EQ(queries.size(), 3u);
    EXPECT_EQ(queries[0], "$..a");
    EXPECT_EQ(queries[1], "$..b");
    EXPECT_EQ(queries[2], "$..c");
}

// ---------------------------------------------------------------------------
// QueryCache.
// ---------------------------------------------------------------------------

TEST(QueryCacheTest, MissThenHitOnTheSameShape)
{
    QueryCache cache(8, 2);
    EngineOptions options;
    bool hit = true;
    CachedQueryPtr first =
        cache.lookup(RequestMode::kSingle, "$..a", options, hit);
    ASSERT_NE(first, nullptr);
    EXPECT_FALSE(hit);
    CachedQueryPtr second =
        cache.lookup(RequestMode::kSingle, "$..a", options, hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(first.get(), second.get());
    CacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(QueryCacheTest, LimitsParticipateInTheKey)
{
    QueryCache cache(8, 1);
    EngineOptions options;
    bool hit = false;
    cache.lookup(RequestMode::kSingle, "$..a", options, hit);
    options.limits.max_depth = 3;
    cache.lookup(RequestMode::kSingle, "$..a", options, hit);
    // Same query, different limits: a distinct entry, not a wrongly-limited
    // shared one.
    EXPECT_FALSE(hit);
    EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(QueryCacheTest, ModeParticipatesInTheKey)
{
    QueryCache cache(8, 1);
    EngineOptions options;
    bool hit = false;
    CachedQueryPtr single =
        cache.lookup(RequestMode::kSingle, "$..a", options, hit);
    CachedQueryPtr multi =
        cache.lookup(RequestMode::kMulti, "$..a", options, hit);
    EXPECT_FALSE(hit);
    EXPECT_NE(single->engine, nullptr);
    EXPECT_EQ(single->multi_engine, nullptr);
    EXPECT_EQ(multi->engine, nullptr);
    EXPECT_NE(multi->multi_engine, nullptr);
}

TEST(QueryCacheTest, NdjsonSharesTheSingleQueryArtifact)
{
    QueryCache cache(8, 1);
    EngineOptions options;
    bool hit = false;
    cache.lookup(RequestMode::kSingle, "$..a", options, hit);
    cache.lookup(RequestMode::kNdjson, "$..a", options, hit);
    EXPECT_TRUE(hit);
}

TEST(QueryCacheTest, SpellingVariantsShareOneEntry)
{
    QueryCache cache(8, 1);
    EngineOptions options;
    bool hit = false;
    cache.lookup(RequestMode::kSingle, "$.a[1:3].b", options, hit);
    cache.lookup(RequestMode::kSingle, "$['a'][1:3]['b']", options, hit);
    EXPECT_TRUE(hit);
    cache.lookup(RequestMode::kSingle, "$[\"a\"][1:3].b", options, hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(cache.stats().entries, 1u);
    // Unparseable text falls back to the raw string: distinct garbage is
    // distinct keys, and the lookup still reports the QueryError.
    EXPECT_THROW(
        cache.lookup(RequestMode::kSingle, "$.[broken", options, hit),
        QueryError);
}

TEST(QueryCacheTest, LruEvictionKeepsOutstandingReferencesAlive)
{
    QueryCache cache(2, 1);
    EngineOptions options;
    bool hit = false;
    CachedQueryPtr oldest =
        cache.lookup(RequestMode::kSingle, "$..a", options, hit);
    cache.lookup(RequestMode::kSingle, "$..b", options, hit);
    cache.lookup(RequestMode::kSingle, "$..c", options, hit);

    CacheStats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 2u);

    // "$..a" was evicted, but the outstanding reference still runs.
    ASSERT_NE(oldest->engine, nullptr);
    PaddedString doc("{\"a\": 1}");
    EXPECT_EQ(oldest->engine->count(doc), 1u);

    // Re-looking it up is a miss again.
    cache.lookup(RequestMode::kSingle, "$..a", options, hit);
    EXPECT_FALSE(hit);
}

TEST(QueryCacheTest, TouchRefreshesLruOrder)
{
    QueryCache cache(2, 1);
    EngineOptions options;
    bool hit = false;
    cache.lookup(RequestMode::kSingle, "$..a", options, hit);
    cache.lookup(RequestMode::kSingle, "$..b", options, hit);
    cache.lookup(RequestMode::kSingle, "$..a", options, hit);  // touch
    cache.lookup(RequestMode::kSingle, "$..c", options, hit);  // evicts $..b
    cache.lookup(RequestMode::kSingle, "$..a", options, hit);
    EXPECT_TRUE(hit) << "touched entry must survive the eviction";
    cache.lookup(RequestMode::kSingle, "$..b", options, hit);
    EXPECT_FALSE(hit) << "untouched entry must be the one evicted";
}

TEST(QueryCacheTest, FailedCompilationsThrowAndAreNeverCached)
{
    QueryCache cache(8, 1);
    EngineOptions options;
    bool hit = false;
    EXPECT_THROW(
        cache.lookup(RequestMode::kSingle, "$.[broken", options, hit),
        QueryError);
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_THROW(
        cache.lookup(RequestMode::kSingle, "$.[broken", options, hit),
        QueryError);
}

TEST(QueryCacheTest, ClearDropsEntriesButNotReferences)
{
    QueryCache cache(8, 2);
    EngineOptions options;
    bool hit = false;
    CachedQueryPtr held =
        cache.lookup(RequestMode::kSingle, "$..a", options, hit);
    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    PaddedString doc("{\"a\": 1}");
    EXPECT_EQ(held->engine->count(doc), 1u);
}

// ---------------------------------------------------------------------------
// Dispatcher: the one dispatch path, against direct engine runs.
// ---------------------------------------------------------------------------

class DispatcherTest : public ::testing::Test {
protected:
    DispatcherTest() : cache_(16, 2), dispatcher_(ServePolicy{}, cache_) {}

    Response handle(const Request& request,
                    const CancelToken* drain = nullptr)
    {
        return dispatcher_.handle(request, scratch_, drain);
    }

    QueryCache cache_;
    Dispatcher dispatcher_;
    RunScratch scratch_;
};

TEST_F(DispatcherTest, SingleModeMatchesADirectEngineRun)
{
    const std::string doc =
        "{\"a\": {\"b\": 1, \"c\": {\"b\": 2}}, \"b\": 3}";
    PaddedString padded(doc);
    OffsetsResult expected =
        DescendEngine::for_query("$..b").offsets_checked(padded);
    ASSERT_TRUE(expected.ok());

    Response response = handle(make_request("$..b", doc));
    ASSERT_EQ(response.serve_status, ServeStatus::kOk);
    ASSERT_TRUE(response.engine_status.ok());
    EXPECT_EQ(response.match_count, expected.offsets.size());
    ASSERT_EQ(response.offsets.size(), expected.offsets.size());
    EXPECT_TRUE(std::equal(response.offsets.begin(), response.offsets.end(),
                           expected.offsets.begin()));
}

TEST_F(DispatcherTest, CountOnlyRequestsOmitOffsets)
{
    Response response =
        handle(make_request("$..b", "{\"b\": 1}", RequestMode::kSingle, 0));
    EXPECT_TRUE(response.ok());
    EXPECT_EQ(response.match_count, 1u);
    EXPECT_TRUE(response.offsets.empty());
    EXPECT_TRUE(response.stats_json.empty());
}

TEST_F(DispatcherTest, StatsFlagReturnsAnObsReport)
{
    Response response = handle(make_request("$..b", "{\"b\": 1}",
                                            RequestMode::kSingle,
                                            kWantStats));
    ASSERT_TRUE(response.ok());
    ASSERT_FALSE(response.stats_json.empty());
    EXPECT_EQ(response.stats_json.front(), '{');
    EXPECT_NE(response.stats_json.find("\"engine\""), std::string::npos);
}

TEST_F(DispatcherTest, CacheHitFlagsAndIdenticalResults)
{
    const std::string doc = "{\"a\": {\"b\": [1, 2]}}";
    Request request = make_request("$..b", doc);
    Response cold = handle(request);
    Response warm = handle(request);
    EXPECT_FALSE(cold.cache_hit());
    EXPECT_TRUE(warm.cache_hit());
    EXPECT_EQ(cold.match_count, warm.match_count);
    EXPECT_EQ(cold.offsets, warm.offsets);
}

TEST_F(DispatcherTest, MultiModeInterleavesQueryOffsetPairs)
{
    const std::string doc =
        "{\"a\": {\"x\": 1}, \"b\": {\"x\": 2}, \"x\": 3}";
    PaddedString padded(doc);
    std::vector<std::string> queries = {"$..x", "$.b.x"};
    std::vector<std::uint64_t> expected;
    std::size_t total = 0;
    for (std::size_t q = 0; q < queries.size(); ++q) {
        OffsetsResult result =
            DescendEngine::for_query(queries[q]).offsets_checked(padded);
        total += result.offsets.size();
        for (std::size_t offset : result.offsets) {
            expected.push_back(q);
            expected.push_back(offset);
        }
    }

    Response response =
        handle(make_request("$..x\n$.b.x", doc, RequestMode::kMulti));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.match_count, total);
    EXPECT_EQ(response.offsets, expected);
}

TEST_F(DispatcherTest, NdjsonModeReportsAbsoluteOffsets)
{
    const std::string body =
        "{\"a\": {\"b\": 1}}\n{\"c\": 2}\n{\"b\": [3, 4]}\n";
    PaddedString padded(body);
    stream::StreamExecutor executor = stream::StreamExecutor::for_query("$..b");
    std::vector<stream::RecordSpan> spans =
        stream::split_records(padded, simd::best_kernels());
    stream::CollectingStreamSink direct;
    stream::StreamResult direct_result =
        executor.run_records(padded, spans, direct);
    std::vector<std::uint64_t> expected;
    for (const auto& match : direct.matches()) {
        expected.push_back(spans[match.record].begin + match.offset);
    }
    ASSERT_FALSE(expected.empty());

    Response response =
        handle(make_request("$..b", body, RequestMode::kNdjson));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.match_count, direct_result.matches);
    EXPECT_EQ(response.offsets, expected);
}

TEST_F(DispatcherTest, NdjsonStreamErrorsSurfaceAtAbsolutePositions)
{
    // Record 1 (offset 10) is malformed at its byte 4 (the stray closer).
    const std::string body = "{\"a\": 1}\n\"xy\"}]\n";
    Response response =
        handle(make_request("$..a", body, RequestMode::kNdjson));
    EXPECT_EQ(response.serve_status, ServeStatus::kOk);
    EXPECT_FALSE(response.engine_status.ok());
    EXPECT_GE(response.engine_status.offset, 9u)
        << "error position must be absolute, not record-relative";
}

TEST_F(DispatcherTest, BadQueryYieldsStructuredStatusNotAThrow)
{
    Response response = handle(make_request("$.[oops", "{}"));
    EXPECT_EQ(response.serve_status, ServeStatus::kBadQuery);
    EXPECT_EQ(response.match_count, 0u);
}

TEST_F(DispatcherTest, RequestLimitsTightenTheServerDefaults)
{
    Request request = make_request("$..b", "{\"a\": {\"b\": 1}, \"b\": 2}");
    request.max_matches = 1;
    Response response = handle(request);
    EXPECT_EQ(response.serve_status, ServeStatus::kOk);
    EXPECT_EQ(response.engine_status.code, StatusCode::kMatchLimit);

    // $.* forces structural descent ($..b's head-skipping can bypass the
    // depth counter entirely), mirroring LimitBoundaryTest in
    // governance_test.cpp.
    Request deep = make_request("$.*", "{\"a\": {\"b\": {\"c\": 1}}}");
    deep.max_depth = 1;
    response = handle(deep);
    EXPECT_EQ(response.engine_status.code, StatusCode::kDepthLimit);
}

TEST(DispatcherPolicyTest, RequestsCannotLoosenServerLimits)
{
    QueryCache cache(4, 1);
    ServePolicy policy;
    policy.engine.limits.max_match_count = 1;
    Dispatcher dispatcher(policy, cache);
    RunScratch scratch;

    Request request = make_request("$..b", "{\"a\": {\"b\": 1}, \"b\": 2}");
    request.max_matches = 1000;  // above the server cap: ignored
    Response response = dispatcher.handle(request, scratch);
    EXPECT_EQ(response.engine_status.code, StatusCode::kMatchLimit);
}

TEST_F(DispatcherTest, DrainCancellationIsDeterministic)
{
    CancelToken cancelled;
    cancelled.cancel();
    Response response =
        handle(make_request("$..b", "{\"b\": 1}"), &cancelled);
    EXPECT_EQ(response.serve_status, ServeStatus::kOk);
    EXPECT_EQ(response.engine_status.code, StatusCode::kCancelled);
}

TEST_F(DispatcherTest, DrainCancellationCoversEveryMode)
{
    CancelToken cancelled;
    cancelled.cancel();
    Response multi = handle(
        make_request("$..a\n$..b", "{\"a\": 1}", RequestMode::kMulti),
        &cancelled);
    EXPECT_EQ(multi.engine_status.code, StatusCode::kCancelled);
    Response ndjson = handle(
        make_request("$..a", "{\"a\": 1}\n{\"a\": 2}\n", RequestMode::kNdjson),
        &cancelled);
    EXPECT_EQ(ndjson.engine_status.code, StatusCode::kCancelled);
}

TEST(DispatcherPolicyTest, DeadlineIsClampedToTheTenantCap)
{
    // A pre-expired *default* deadline cannot be faked with wall clocks, so
    // assert the clamp's observable effect instead: with a 0 default and no
    // cap, a request deadline of 0 must leave the budget inactive (the run
    // completes); with the drain token set, the same request is cancelled —
    // proving the budget is threaded even without a deadline.
    QueryCache cache(4, 1);
    Dispatcher dispatcher(ServePolicy{}, cache);
    RunScratch scratch;
    Request request = make_request("$..b", "{\"b\": 1}");
    Response response = dispatcher.handle(request, scratch);
    EXPECT_TRUE(response.engine_status.ok());

    CancelToken cancelled;
    cancelled.cancel();
    response = dispatcher.handle(request, scratch, &cancelled);
    EXPECT_EQ(response.engine_status.code, StatusCode::kCancelled);
}

TEST_F(DispatcherTest, ScratchReusesBuffersAcrossRequests)
{
    // Two requests through one scratch: the second must not see the first's
    // matches (reset semantics), and the document arena must have grown to
    // the larger body.
    Response first = handle(make_request("$..b", "{\"b\": [1, 2, 3]}"));
    EXPECT_EQ(first.match_count, 1u);
    Response second = handle(make_request("$..z", "{\"a\": 1}"));
    EXPECT_EQ(second.match_count, 0u);
    EXPECT_TRUE(second.offsets.empty());
    EXPECT_GE(scratch_.document.capacity(), std::strlen("{\"b\": [1, 2, 3]}"));
}

TEST(PaddedArenaTest, EmptyAssignOnFreshArenaStillProvidesPadding)
{
    // Regression: an empty body as the very first assign must still give
    // the classifiers a readable (space-filled) padding region — the
    // arena cannot skip allocation just because the logical size is zero.
    PaddedArena arena;
    PaddedView view = arena.assign(std::string_view{});
    ASSERT_NE(view.data(), nullptr);
    EXPECT_EQ(view.size(), 0u);
    for (std::size_t i = 0; i < PaddedString::kPadding; ++i) {
        EXPECT_EQ(view.data()[i], ' ');
    }
}

// ---------------------------------------------------------------------------
// Socket-level happy path against a live Server.
// ---------------------------------------------------------------------------

class LoopbackClient {
public:
    explicit LoopbackClient(std::uint16_t port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        connected_ = fd_ >= 0 &&
                     ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                               sizeof(addr)) == 0;
    }

    ~LoopbackClient()
    {
        if (fd_ >= 0) {
            ::close(fd_);
        }
    }

    bool connected() const noexcept { return connected_; }

    bool send_bytes(const std::vector<std::uint8_t>& bytes)
    {
        std::size_t sent = 0;
        while (sent < bytes.size()) {
            ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
            if (n <= 0) {
                return false;
            }
            sent += static_cast<std::size_t>(n);
        }
        return true;
    }

    bool read_response(Response& response)
    {
        std::uint8_t chunk[4096];
        for (;;) {
            std::size_t consumed = 0;
            if (!buffer_.empty() &&
                decode_response(buffer_.data(), buffer_.size(), response,
                                consumed)) {
                buffer_.erase(buffer_.begin(),
                              buffer_.begin() +
                                  static_cast<std::ptrdiff_t>(consumed));
                return true;
            }
            ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0) {
                return false;
            }
            buffer_.insert(buffer_.end(), chunk, chunk + n);
        }
    }

private:
    int fd_ = -1;
    bool connected_ = false;
    std::vector<std::uint8_t> buffer_;
};

TEST(ServeServerTest, TcpHappyPathEndToEnd)
{
    ServerConfig config;
    config.workers = 2;
    Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;
    ASSERT_NE(server.tcp_port(), 0);

    {
        LoopbackClient client(server.tcp_port());
        ASSERT_TRUE(client.connected());
        Request request = make_request("$..b", "{\"a\": {\"b\": 42}}");
        ASSERT_TRUE(client.send_bytes(encode_request(request)));
        Response response;
        ASSERT_TRUE(client.read_response(response));
        EXPECT_TRUE(response.ok());
        EXPECT_EQ(response.match_count, 1u);

        // Pipelined second request on the same connection.
        ASSERT_TRUE(client.send_bytes(encode_request(request)));
        ASSERT_TRUE(client.read_response(response));
        EXPECT_TRUE(response.ok());
        EXPECT_TRUE(response.cache_hit());
    }

    server.shutdown();
    server.wait();
    EXPECT_FALSE(server.running());
    ServerCounters counters = server.counters();
    EXPECT_EQ(counters.connections_accepted, 1u);
    EXPECT_EQ(counters.requests_served, 2u);
    EXPECT_EQ(server.cache_stats().hits, 1u);
}

TEST(ServeServerTest, MalformedFrameGetsAStructuredResponseAndAClose)
{
    ServerConfig config;
    config.workers = 1;
    Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    LoopbackClient client(server.tcp_port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.send_bytes(std::vector<std::uint8_t>(32, 0xcc)));
    Response response;
    ASSERT_TRUE(client.read_response(response));
    EXPECT_EQ(response.serve_status, ServeStatus::kBadMagic);
    EXPECT_FALSE(client.read_response(response)) << "connection must close";

    server.shutdown();
    server.wait();
    EXPECT_EQ(server.counters().protocol_errors, 1u);
}

TEST(ServeServerTest, UnixSocketEndpointServes)
{
    std::string path = ::testing::TempDir() + "serve_test.sock";
    ::unlink(path.c_str());
    ServerConfig config;
    config.unix_path = path;
    config.workers = 1;
    Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    std::vector<std::uint8_t> wire =
        encode_request(make_request("$..a", "{\"a\": 7}"));
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(wire.size()));
    std::vector<std::uint8_t> buffer;
    std::uint8_t chunk[4096];
    Response response;
    std::size_t consumed = 0;
    for (;;) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        ASSERT_GT(n, 0);
        buffer.insert(buffer.end(), chunk, chunk + n);
        if (decode_response(buffer.data(), buffer.size(), response,
                            consumed)) {
            break;
        }
    }
    ::close(fd);
    EXPECT_TRUE(response.ok());
    EXPECT_EQ(response.match_count, 1u);

    server.shutdown();
    server.wait();
    ::unlink(path.c_str());
}

}  // namespace
}  // namespace descend::serve
