/**
 * @file
 * Direct tests of the structural iterator (the multi-classifier pipeline's
 * stream abstraction): event sequences, peeking, toggling mid-block,
 * label backtracking, both skip flavours, stop/resume, and padded-string
 * plumbing — at both SIMD levels.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "descend/engine/extract.h"
#include "descend/engine/structural_iterator.h"

namespace descend {
namespace {

using Kind = StructuralIterator::Kind;

std::string drain(StructuralIterator& iter)
{
    std::string events;
    while (true) {
        auto event = iter.next();
        if (event.kind == Kind::kNone) {
            return events;
        }
        events.push_back(static_cast<char>(event.byte));
    }
}

class IteratorTest : public ::testing::TestWithParam<simd::Level> {
protected:
    const simd::Kernels& kernels() const { return simd::kernels_for(GetParam()); }
};

TEST_P(IteratorTest, DefaultModeSkipsLeaves)
{
    PaddedString doc(R"({"a": [1, 2], "b": {"c": 3}})");
    StructuralIterator iter(doc, kernels());
    // Only braces/brackets by default: leaves are invisible.
    EXPECT_EQ(drain(iter), "{[]{}}");
}

TEST_P(IteratorTest, TogglesExtendTheEventSet)
{
    PaddedString doc(R"({"a": [1, 2]})");
    StructuralIterator iter(doc, kernels());
    iter.set_colons(true);
    iter.set_commas(true);
    EXPECT_EQ(drain(iter), "{:[,]}");
}

TEST_P(IteratorTest, InStringStructuralsAreInvisible)
{
    PaddedString doc(R"({"k": "a {[,:]} b", "x": []})");
    StructuralIterator iter(doc, kernels());
    iter.set_commas(true);
    iter.set_colons(true);
    EXPECT_EQ(drain(iter), "{:,:[]}");
}

TEST_P(IteratorTest, PeekDoesNotConsume)
{
    PaddedString doc(R"([{}])");
    StructuralIterator iter(doc, kernels());
    EXPECT_EQ(iter.peek().byte, '[');
    EXPECT_EQ(iter.peek().byte, '[');
    EXPECT_EQ(iter.next().byte, '[');
    EXPECT_EQ(iter.peek().byte, '{');
    EXPECT_EQ(iter.next().byte, '{');
}

TEST_P(IteratorTest, PeekAcrossBlockBoundary)
{
    std::string text = "[" + std::string(100, ' ') + "{}]";
    PaddedString doc(text);
    StructuralIterator iter(doc, kernels());
    EXPECT_EQ(iter.next().byte, '[');
    EXPECT_EQ(iter.peek().byte, '{');
    EXPECT_EQ(iter.next().pos, 101u);
}

TEST_P(IteratorTest, EventPositionsAreAbsolute)
{
    PaddedString doc(R"(  {"a": 1})");
    StructuralIterator iter(doc, kernels());
    iter.set_colons(true);
    EXPECT_EQ(iter.next().pos, 2u);
    EXPECT_EQ(iter.next().pos, 6u);
    EXPECT_EQ(iter.next().pos, 9u);
}

TEST_P(IteratorTest, LabelBacktracking)
{
    std::string text = R"({"alpha": {"beta" : [ {"x":1} ]}})";
    PaddedString doc(text);
    StructuralIterator iter(doc, kernels());
    ASSERT_EQ(iter.next().byte, '{');  // root: no label
    EXPECT_FALSE(iter.label_before(0).has_value());
    auto open_alpha = iter.next();
    ASSERT_EQ(open_alpha.byte, '{');
    EXPECT_EQ(iter.label_before(open_alpha.pos), "alpha");
    auto open_beta = iter.next();
    ASSERT_EQ(open_beta.byte, '[');
    EXPECT_EQ(iter.label_before(open_beta.pos), "beta");
    auto open_x = iter.next();
    ASSERT_EQ(open_x.byte, '{');
    // Array entry: artificial label.
    EXPECT_FALSE(iter.label_before(open_x.pos).has_value());
}

TEST_P(IteratorTest, LabelBacktrackingWithEscapes)
{
    std::string text = R"({"we \"said\"": {}})";
    PaddedString doc(text);
    StructuralIterator iter(doc, kernels());
    ASSERT_EQ(iter.next().byte, '{');
    auto open = iter.next();
    EXPECT_EQ(iter.label_before(open.pos), R"(we \"said\")");
}

TEST_P(IteratorTest, SkipElementConsumesWholeSubtree)
{
    PaddedString doc(R"({"a": {"deep": [{}, [], "}}"]}, "b": 1})");
    StructuralIterator iter(doc, kernels());
    ASSERT_EQ(iter.next().byte, '{');   // root
    auto open_a = iter.next();
    ASSERT_EQ(open_a.byte, '{');        // value of a
    iter.skip_element(open_a.byte);
    // Next event is the root's closing brace.
    auto next = iter.next();
    EXPECT_EQ(next.byte, '}');
    EXPECT_EQ(next.pos, doc.size() - 1);
}

TEST_P(IteratorTest, SkipToParentCloseLeavesCloserPending)
{
    PaddedString doc(R"({"a": 1, "b": {"c": [2]}, "d": 3})");
    StructuralIterator iter(doc, kernels());
    ASSERT_EQ(iter.next().byte, '{');
    iter.skip_to_parent_close(/*parent_is_object=*/true);
    auto closer = iter.next();
    EXPECT_EQ(closer.kind, Kind::kClosing);
    EXPECT_EQ(closer.pos, doc.size() - 1);
    EXPECT_EQ(iter.next().kind, Kind::kNone);
}

TEST_P(IteratorTest, SkipsWorkAcrossManyBlocks)
{
    std::string text = R"({"skip": [)";
    for (int i = 0; i < 100; ++i) {
        text += R"({"filler": "some padding text here"},)";
    }
    text += R"(0], "target": 7})";
    PaddedString doc(text);
    StructuralIterator iter(doc, kernels());
    ASSERT_EQ(iter.next().byte, '{');
    auto open = iter.next();
    ASSERT_EQ(open.byte, '[');
    iter.skip_element(open.byte);
    iter.set_colons(true);
    auto colon = iter.next();
    EXPECT_EQ(colon.kind, Kind::kColon);
    EXPECT_EQ(iter.label_before(colon.pos), "target");
}

TEST_P(IteratorTest, StopResumeRoundTrip)
{
    PaddedString doc(R"({"a": [1, {"b": 2}], "c": 3})");
    StructuralIterator iter(doc, kernels());
    ASSERT_EQ(iter.next().byte, '{');
    ASSERT_EQ(iter.next().byte, '[');
    ResumePoint point = iter.resume_point();

    // Drain to the end, then resume: the event stream must replay.
    std::string rest_once = drain(iter);
    iter.resume(point);
    std::string rest_twice = drain(iter);
    EXPECT_EQ(rest_once, rest_twice);
    EXPECT_EQ(rest_once, "{}]}");
}

TEST_P(IteratorTest, FirstNonWs)
{
    PaddedString doc("  \t\n7 ");
    StructuralIterator iter(doc, kernels());
    EXPECT_EQ(iter.first_non_ws(0), 4u);
    EXPECT_EQ(iter.first_non_ws(4), 4u);
    EXPECT_EQ(iter.first_non_ws(5), doc.size());
}

TEST_P(IteratorTest, EmptyInput)
{
    PaddedString doc("");
    StructuralIterator iter(doc, kernels());
    EXPECT_EQ(iter.next().kind, Kind::kNone);
    EXPECT_EQ(iter.peek().kind, Kind::kNone);
}

INSTANTIATE_TEST_SUITE_P(Levels, IteratorTest,
                         ::testing::Values(simd::Level::avx512, simd::Level::avx2,
                                           simd::Level::scalar),
                         [](const ::testing::TestParamInfo<simd::Level>& info) {
                             return simd::level_name(info.param);
                         });

TEST(PaddedString, CopiesAndPads)
{
    PaddedString doc("abc");
    EXPECT_EQ(doc.size(), 3u);
    EXPECT_EQ(doc.view(), "abc");
    // Padding must be whitespace for at least kPadding bytes.
    for (std::size_t i = 0; i < PaddedString::kPadding; ++i) {
        EXPECT_EQ(doc.data()[3 + i], ' ');
    }
}

TEST(PaddedString, MoveTransfersOwnership)
{
    PaddedString source("hello");
    PaddedString moved(std::move(source));
    EXPECT_EQ(moved.view(), "hello");
    EXPECT_TRUE(source.empty());  // NOLINT(bugprone-use-after-move)
    PaddedString assigned;
    assigned = std::move(moved);
    EXPECT_EQ(assigned.view(), "hello");
}

TEST(Extract, DelimitsEveryValueKind)
{
    PaddedString doc(R"({"o": {"x": [1, "]"]}, "a": [ {"y":2} ], "s": "a,b",
                        "n": -1.5e3, "t": true, "z": null})");
    auto value_at = [&](std::size_t offset) {
        return std::string(extract_value(doc, offset));
    };
    EXPECT_EQ(value_at(doc.view().find("{\"x\"")), R"({"x": [1, "]"]})");
    EXPECT_EQ(value_at(doc.view().find("[ {")), R"([ {"y":2} ])");
    EXPECT_EQ(value_at(doc.view().find("\"a,b\"")), R"("a,b")");
    EXPECT_EQ(value_at(doc.view().find("-1.5e3")), "-1.5e3");
    EXPECT_EQ(value_at(doc.view().find("true")), "true");
    EXPECT_EQ(value_at(doc.view().find("null")), "null");
}

}  // namespace
}  // namespace descend
