/**
 * @file
 * Hand-written correctness tests for the main engine: every selector kind,
 * every skipping path, toggling, block-boundary straddles, escapes,
 * whitespace torture, and the paper's own running examples. Each case is
 * checked against the DOM oracle and across every engine configuration
 * (both SIMD levels, each skip disabled, all skips disabled).
 */
#include <gtest/gtest.h>

#include <string>

#include "descend/workloads/datasets.h"
#include "test_helpers.h"

namespace descend {
namespace {

using testing::expect_all_engines_agree;
using testing::expect_count;

TEST(EngineBasics, RootQueryMatchesWholeDocument)
{
    expect_count("$", R"({"a": 1})", 1);
    expect_count("$", R"(  [1, 2, 3] )", 1);
    expect_count("$", "42", 1);
    expect_count("$", R"(  "just a string"  )", 1);
}

TEST(EngineBasics, SingleChildLabel)
{
    expect_count("$.a", R"({"a": 1})", 1);
    expect_count("$.a", R"({"b": 1})", 0);
    expect_count("$.a", R"({"b": 2, "a": 1})", 1);
    expect_count("$.a", R"({"a": {"a": 1}})", 1);
    expect_count("$.a", R"([{"a": 1}])", 0);
    expect_count("$.a", "17", 0);
}

TEST(EngineBasics, ChildChain)
{
    expect_count("$.a.b", R"({"a": {"b": 3}})", 1);
    expect_count("$.a.b", R"({"a": {"c": {"b": 3}}})", 0);
    expect_count("$.a.b", R"({"b": {"b": 3}, "a": {"x": 1, "b": 2}})", 1);
    expect_count("$.a.b.c", R"({"a": {"b": {"c": null}}})", 1);
}

TEST(EngineBasics, LeafValueTypes)
{
    expect_count("$.a", R"({"a": "text"})", 1);
    expect_count("$.a", R"({"a": true})", 1);
    expect_count("$.a", R"({"a": false})", 1);
    expect_count("$.a", R"({"a": null})", 1);
    expect_count("$.a", R"({"a": -12.5e3})", 1);
    expect_count("$.a", R"({"a": []})", 1);
    expect_count("$.a", R"({"a": {}})", 1);
}

TEST(EngineBasics, Wildcard)
{
    expect_count("$.*", R"({"a": 1, "b": 2, "c": 3})", 3);
    expect_count("$.*", R"([1, 2, 3])", 3);
    expect_count("$.*", R"([])", 0);
    expect_count("$.*", R"({})", 0);
    expect_count("$.*", R"([[1], 2, {"x": 3}])", 3);
    expect_count("$.*.*", R"([[1], 2, {"x": 3}])", 2);
}

TEST(EngineBasics, WildcardOverObjectsIsIdiomatic)
{
    // JSONSki's wildcard only steps into arrays; ours must handle objects
    // (the paper's "idiomatic wildcard").
    expect_count("$.*.b", R"({"a": {"b": 1}, "c": {"b": 2}})", 2);
    expect_count("$.*.b", R"([{"b": 1}, {"b": 2}, {"c": 3}])", 2);
}

TEST(EngineBasics, Descendant)
{
    expect_count("$..a", R"({"a": 1})", 1);
    expect_count("$..a", R"({"x": {"a": 1}})", 1);
    expect_count("$..a", R"({"a": {"a": 1}})", 2);
    expect_count("$..a", R"([[[{"a": []}]]])", 1);
    expect_count("$..a", R"({"b": 1})", 0);
    expect_count("$..a", R"({"a": [{"a": {"a": 3}}]})", 3);
}

TEST(EngineBasics, DescendantChains)
{
    expect_count("$..a..b", R"({"a": {"b": 1}})", 1);
    expect_count("$..a..b", R"({"a": {"x": [{"b": 1}]}})", 1);
    expect_count("$..a..b", R"({"b": {"a": 1}})", 0);
    // Node semantics: one result even with multiple witnessing paths.
    expect_count("$..a..b", R"({"a": {"a": {"b": 1}}})", 1);
}

TEST(EngineBasics, PaperRunningExample)
{
    // Section 2: in {"a":[{"b":{"c":1}},{"b":[2]}]} the query $.a..b.*
    // returns 1 and 2.
    expect_count("$.a..b.*", R"({"a":[{"b":{"c":1}},{"b":[2]}]})", 2);
}

TEST(EngineBasics, PaperGreedyMatchExample)
{
    // Section 3.1: query ..b.*..c.* style matching with nested b's; node
    // semantics must not duplicate.
    expect_count("$.a..b.*..c.*", R"({"a":{"b":{"b":{"b":{"c":[42]}}}}})", 1);
}

TEST(EngineBasics, MixedSelectors)
{
    expect_count("$..a.b", R"({"a": {"b": 1}, "x": {"a": {"b": 2}}})", 2);
    expect_count("$..a.b", R"({"a": {"a": {"b": 1}}})", 1);
    expect_count("$.a..b.c", R"({"a": {"b": {"c": 1}, "d": {"b": {"c": 2}}}})", 2);
    expect_count("$..*", R"({"a": [1, {"b": 2}]})", 4);
    expect_count("$..*.b", R"({"a": {"b": 5}})", 1);
}

TEST(EngineArrays, LeafEntries)
{
    expect_count("$.a.*", R"({"a": [1, 2, 3]})", 3);
    expect_count("$.a.*", R"({"a": []})", 0);
    expect_count("$.a.*", R"({"a": [7]})", 1);
    expect_count("$.a.*", R"({"a": ["x", [1], "y"]})", 3);
    expect_count("$.a.*", R"({"a": [[1], 2]})", 2);
    expect_count("$.a.*", R"({"a": [{"b": 1}, 2, [3]]})", 3);
}

TEST(EngineArrays, FirstItemCornerCases)
{
    // The first array item is caught neither by Comma nor Opening when it
    // is an atom: the try_match_first_item path (Section 3.4).
    expect_count("$.*", R"([1])", 1);
    expect_count("$.*", R"([ 1 ])", 1);
    expect_count("$.*", R"(["string with , and [ inside"])", 1);
    expect_count("$.*", R"([{"x": 1}])", 1);
    expect_count("$.*", R"([[]])", 1);
    expect_count("$.*", R"([ ])", 0);
}

TEST(EngineArrays, NestedArrays)
{
    expect_count("$.*.*", R"([[1, 2], [3]])", 3);
    expect_count("$..a.*", R"({"a": [1, [2, {"a": [3, 4]}]]})", 4);
    expect_count("$.*.*.*", R"([[[1], [2, 3]], [[4]]])", 4);
}

TEST(EngineIndices, BasicIndexSelectors)
{
    expect_count("$[0]", R"([10, 20, 30])", 1);
    expect_count("$[1]", R"([10, 20, 30])", 1);
    expect_count("$[2]", R"([10, 20, 30])", 1);
    expect_count("$[3]", R"([10, 20, 30])", 0);
    expect_count("$[0]", R"({"a": 1})", 0);
    expect_count("$[1]", R"([[1, 2], [3, 4]])", 1);
}

TEST(EngineIndices, IndexChains)
{
    expect_count("$[1][0]", R"([[1, 2], [3, 4]])", 1);
    expect_count("$.a[0].b", R"({"a": [{"b": 5}, {"b": 6}]})", 1);
    expect_count("$[0]..a", R"([{"x": {"a": 1}}, {"a": 2}])", 1);
    expect_count("$..a[1]", R"({"a": [5, 6, 7], "b": {"a": [8]}})", 1);
    expect_count("$[2]", R"([{"x": 1}, [2], "three", 4])", 1);
}

TEST(EngineIndices, SkippedSiblingsDoNotDesyncCounters)
{
    // Regression battery for the skip/counter interaction: a child-skipped
    // `[...]` or `{...}` sibling hides its internal commas from the event
    // stream, and the entry counter must still account the ONE comma that
    // separates it from the next entry — a desynced counter silently
    // shifts every later index. expect_count cross-checks all skip
    // configurations at every SIMD tier against the DOM oracle.
    expect_count("$[2]", R"([[9, 9, 9], {"a": [1, 2]}, 42])", 1);
    expect_count("$[2]", R"([{"deep": [[1, 2], [3, 4]]}, [5, 6], 7, 8])", 1);
    expect_count("$[1].b", R"([{"b": 1, "z": [9, 9]}, {"b": 2}, {"b": 3}])", 1);
    expect_count("$[3]", R"([[", [fake"], {"s": "], fake]"}, [], 13])", 1);
    expect_count("$.a[1][1]", R"({"a": [[1, 2], [3, 4]]})", 1);
    expect_count("$[0]", R"([{"x": [1, 2, 3]}, [4, 5], 6])", 1);
}

TEST(EngineSlices, SliceSelectorsAcrossSkips)
{
    expect_count("$[2:4]", R"([[1, 2], [3, 4], [5, 6], [7, 8], [9, 10]])", 2);
    expect_count("$[1:]..b", R"([{"b": 0}, {"x": {"b": 1}}, {"b": 2}])", 2);
    expect_count("$.a[0:2].b",
                 R"({"a": [{"b": 1}, {"c": [9, 9], "b": 2}, {"b": 3}]})", 2);
    // Counter state is per depth: a nested array restarts at entry 0.
    expect_count("$[1:][1:]", R"([[1, 2, 3], [4, 5], [6, 7, 8]])", 3);
    expect_count("$[0:]", R"([])", 0);
    expect_count("$[0:]", R"([[]])", 1);
}

TEST(EngineUnions, UnionSelectors)
{
    expect_count("$['a','c']", R"({"a": 1, "b": 2, "c": 3})", 2);
    expect_count("$['a','c'].x", R"({"a": {"x": 1}, "c": {"y": 2}})", 1);
    expect_count("$.*['p','q']",
                 R"({"l": {"p": 1}, "m": {"q": 2}, "n": {"r": 3}})", 2);
    expect_count(R"($['he said \"hi\"','plain'])",
                 R"({"he said \"hi\"": 1, "plain": 2, "other": 3})", 2);
    expect_count("$['a','b']['a','b']",
                 R"({"a": {"b": 1}, "b": {"c": 2}})", 1);
}

TEST(EngineFilters, FilterSelectors)
{
    expect_count("$.a[?(@.x>2)]",
                 R"({"a": [{"x": 1}, {"x": 3}, {"x": 10}]})", 2);
    // Filter candidates can be large containers; the predicate's span
    // extension and lazy field walk must cope with nested noise.
    expect_count("$[?(@.k==1)]",
                 R"([{"pad": [[1, 2], {"k": 9}], "k": 1}, {"k": 2}])", 1);
    expect_count("$..l[?(@.x)]",
                 R"({"l": [{"x": 1}], "d": {"l": [{"y": 2}, {"x": 3}]}})", 2);
    // Wildcard-guarded candidates: atoms fail the field walk gracefully.
    expect_count("$[?(@.x)]", R"([1, "x", null, {"x": 0}, [5]])", 1);
}

TEST(EngineStrings, StructuralCharactersInsideStrings)
{
    expect_count("$.a", R"({"x": "}{][,:", "a": 1})", 1);
    expect_count("$.a", R"({"x": "{\"a\": 2}", "a": 1})", 1);
    expect_count("$.a.b", R"({"a": {"x": "}}}}", "b": 1}})", 1);
    expect_count("$.*", R"(["[", "]", "{", "}"])", 4);
}

TEST(EngineStrings, EscapedQuotes)
{
    expect_count("$.a", R"({"x": "quote \" here", "a": 1})", 1);
    expect_count("$.a", R"({"x": "backslash \\", "a": 1})", 1);
    expect_count("$.a", R"({"x": "\\\" tricky", "a": 1})", 1);
    expect_count("$.a", R"({"x": "ends with \\\\", "a": 1})", 1);
}

TEST(EngineStrings, LabelsWithEscapes)
{
    // Labels are compared byte-for-byte in escaped form; the bracket
    // syntax lets queries name them.
    expect_count(R"($['he said \"hi\"'])", R"({"he said \"hi\"": 1})", 1);
    expect_count(R"($['back\\slash'])", R"({"back\\slash": 2})", 1);
    expect_count(R"($..['a\\b'])", R"({"x": {"a\\b": 3}})", 1);
}

TEST(EngineStrings, LabelValuedStringsAreNotLabels)
{
    // A string *value* equal to "a" must not fire label transitions.
    expect_count("$..a", R"({"x": "a", "y": ["a", "a"]})", 0);
    expect_count("$..a", R"(["a", {"a": 1}])", 1);
}

TEST(EngineWhitespace, TortureFormatting)
{
    expect_count("$.a.b", "{ \"a\"\n :\t{ \"b\" : 1 } }", 1);
    expect_count("$.a.*", "{\"a\" : [ 1 ,\n\t2 , 3 ]\n}", 3);
    expect_count("$..b", "  {  \"a\" : { \"b\" :  [ ] } }  ", 1);
    expect_count("$.*", "[\n\n\n1\n\n,\n2\n\n]", 2);
}

TEST(EngineBlocks, BoundaryStraddles)
{
    // Force interesting characters to straddle 64-byte block boundaries by
    // padding with whitespace of varying length.
    for (std::size_t pad = 50; pad <= 70; ++pad) {
        std::string document = "{" + std::string(pad, ' ') +
                               R"("a": {"b": [1, 2, {"c": "x,]}"}]})" + "}";
        expect_all_engines_agree("$.a.b.*", document);
        expect_all_engines_agree("$..c", document);
    }
}

TEST(EngineBlocks, LabelSplitAcrossBlocks)
{
    for (std::size_t pad = 40; pad <= 80; ++pad) {
        std::string document =
            "{" + std::string(pad, ' ') + R"("long_label_name": {"inner": 42}})";
        expect_all_engines_agree("$.long_label_name.inner", document);
        expect_all_engines_agree("$..inner", document);
    }
}

TEST(EngineBlocks, EscapeRunsAcrossBlocks)
{
    for (std::size_t run = 58; run <= 68; ++run) {
        std::string document = R"({"x": ")" + std::string(run, '\\') +
                               std::string(run % 2, '\\') + R"(", "a": 1})";
        expect_all_engines_agree("$.a", document);
    }
}

TEST(EngineSkipping, ChildSkipOverDeepIrrelevantSubtrees)
{
    expect_count("$.z",
                 R"({"a": {"deep": [[[{"nested": {"z": "decoy"}}]]]}, "z": 1})", 1);
    expect_count("$.a.z", R"({"a": {"x": {"z": "no"}, "z": 2}})", 1);
}

TEST(EngineSkipping, SiblingSkipAfterUnitaryMatch)
{
    // After matching the unique label of a unitary state, remaining
    // siblings are fast-forwarded; matches must be identical anyway.
    expect_count("$.a.b", R"({"a": {"b": 1}, "later": {"b": "no"}})", 1);
    expect_count("$.a", R"({"a": 1, "b": 2, "c": {"a": "no"}})", 1);
    expect_count("$.a.b.c", R"({"a": {"b": {"c": 1}, "z": 9}, "y": 8})", 1);
}

TEST(EngineSkipping, HeadSkipQueries)
{
    expect_count("$..a.b", R"({"a": {"b": 1}, "x": [{"a": {"b": 2}}]})", 2);
    expect_count("$..a", R"({"a": "leaf", "x": {"a": [1]}})", 2);
    // Fake occurrences inside strings must not derail head-skipping.
    expect_count("$..a", R"({"x": "\"a\": 1", "a": 7})", 1);
    expect_count("$..needle", R"({"x": "\"needle\":", "y": {"needle": []}})", 1);
}

TEST(EngineMisc, EmptyContainers)
{
    expect_count("$.a", R"({"a": {}})", 1);
    expect_count("$.a.*", R"({"a": {}})", 0);
    expect_count("$..a", R"({"b": {}, "c": [], "a": {}})", 1);
    expect_count("$.*", R"([[], {}, [{}]])", 3);
}

TEST(EngineMisc, DocumentIsSingleAtom)
{
    expect_count("$.a", "123", 0);
    expect_count("$..a", "\"a\"", 0);
    expect_count("$.*", "null", 0);
}

TEST(EngineMisc, MatchesAreReportedInDocumentOrder)
{
    std::string document = R"({"a": 1, "b": {"a": 2}, "c": [{"a": 3}], "d": 4})";
    auto offsets = testing::engine_offsets("$..a", document);
    ASSERT_EQ(offsets.size(), 3u);
    EXPECT_LT(offsets[0], offsets[1]);
    EXPECT_LT(offsets[1], offsets[2]);
}

TEST(EngineMisc, OffsetsPointAtValues)
{
    std::string document = R"({"a":  {"b": [10, 20]}})";
    PaddedString padded(document);
    auto engine = DescendEngine::for_query("$.a");
    auto offsets = engine.offsets(padded);
    ASSERT_EQ(offsets.size(), 1u);
    EXPECT_EQ(document[offsets[0]], '{');
    auto value = extract_value(padded, offsets[0]);
    EXPECT_EQ(value, R"({"b": [10, 20]})");
}

TEST(EngineMisc, ValueExtraction)
{
    std::string document = R"({"s": "str", "n": -1.5, "o": {"x": [1]}, "t": true})";
    PaddedString padded(document);
    auto engine = DescendEngine::for_query("$.*");
    auto values = extract_values(padded, engine.offsets(padded));
    ASSERT_EQ(values.size(), 4u);
    EXPECT_EQ(values[0], R"("str")");
    EXPECT_EQ(values[1], "-1.5");
    EXPECT_EQ(values[2], R"({"x": [1]})");
    EXPECT_EQ(values[3], "true");
}

TEST(EngineMisc, DeepNestingSpillsTheDepthStack)
{
    // 300 levels: deeper than the inline frame capacity (128), forcing the
    // InlineVector to spill to the heap, and deeper than one kind-bitstack
    // word span.
    std::string document;
    for (int i = 0; i < 300; ++i) {
        document += R"({"a":)";
    }
    document += "1";
    document.append(300, '}');
    expect_count("$..a", document, 300);
    std::string child_query = "$";
    for (int i = 0; i < 10; ++i) {
        child_query += ".a";
    }
    expect_count(child_query, document, 1);
}

TEST(EngineMisc, RunStatsReflectSkips)
{
    std::string document =
        R"({"a": {"b": 1}, "junk": {"deep": [[[1, 2, 3]]]}, "more": [7, 8]})";
    PaddedString padded(document);
    auto engine = DescendEngine::for_query("$.a.b");
    CountSink sink;
    RunStats stats = engine.run_with_stats(padded, sink);
    EXPECT_EQ(sink.count(), 1u);
    // The counters are live only in DESCEND_OBS builds; obs_test carries
    // the full registry coverage.
    if constexpr (obs::kEnabled) {
        EXPECT_GT(stats.events(), 0u);
        // "junk" and "more" transitions hit the trash state: children skipped.
        EXPECT_GE(stats.child_skips() + stats.sibling_skips(), 1u);
    }
}

TEST(EngineStrings, NonAsciiLabels)
{
    // UTF-8 labels are plain bytes to the engine; both bare and bracket
    // query syntax accept them.
    expect_count("$.日本", R"({"日本": 1})", 1);
    expect_count("$..日本.x", R"({"a": {"日本": {"x": 2}}})", 1);
    expect_count(R"($['ключ'])", R"({"ключ": [1, 2]})", 1);
    expect_count("$.naïve", R"({"naïve": true, "naive": false})", 1);
    expect_count("$..日本", R"({"日": {"本": {"日本": 1}}})", 1);
}

TEST(EngineStrings, SurrogatePairQueryMatchesRawNonBmpKey)
{
    // The document stores the key as raw UTF-8 (U+1F600, four bytes); the
    // query spells it as a UTF-16 surrogate pair escape. The parser decodes
    // the pair into the same four bytes, so every engine — streaming in all
    // configurations, surfer, and the DOM oracle — agrees on the match set.
    std::string key = "\xF0\x9F\x98\x80";
    std::string document =
        R"({")" + key + R"(": 1, "other": {")" + key + R"(": [2, 3]}})";
    expect_count("$['\\uD83D\\uDE00']", document, 1);
    expect_count("$..['\\uD83D\\uDE00']", document, 2);
}

TEST(EngineIntegration, GeneratedDatasetsAcrossAllConfigurations)
{
    // A medium-size realistic document: every engine configuration must
    // agree with the oracle on head-skip-heavy and child-heavy queries.
    std::string crossref = workloads::generate_crossref(300 * 1024);
    for (const char* query :
         {"$..affiliation..name", "$.items.*.author.*.ORCID", "$..DOI",
          "$..editor", "$.items.*.title", "$..author..affiliation..name",
          "$.items[0].DOI", "$..date-parts[0][1]"}) {
        expect_all_engines_agree(query, crossref);
    }
    std::string ast = workloads::generate_ast(200 * 1024);
    for (const char* query : {"$..decl.name", "$..inner..inner..type.qualType",
                              "$..loc.includedFrom.file", "$..range.end.col"}) {
        expect_all_engines_agree(query, ast);
    }
}

TEST(EngineMisc, DepthStackStaysSparseForChildFreeQueries)
{
    // Section 3.2: a child-free query with n selectors needs O(n) frames no
    // matter how deep the document nests — the frames play the role of the
    // stackless algorithm's n depth registers.
    std::string document;
    for (int i = 0; i < 200; ++i) {
        document += (i % 2 == 0) ? R"({"a":)" : R"({"b":)";
    }
    document += "1";
    document.append(200, '}');
    PaddedString padded(document);

    EngineOptions no_head;  // exercise the main loop, not head-skipping
    no_head.head_skipping = false;
    DescendEngine child_free(automaton::CompiledQuery::compile("$..a..b"), no_head);
    CountSink sink;
    RunStats stats = child_free.run_with_stats(padded, sink);
    if constexpr (obs::kEnabled) {
        EXPECT_LE(stats.max_stack(), 2u);
    }

    // The adversarial case the paper describes (A1/A2-style): a query with
    // a child selector on a document whose relevant label keeps re-entering
    // scope at alternating depths — the DFA state flips between subsets at
    // every level and the stack must track the depth.
    std::string nested;
    for (int i = 0; i < 150; ++i) {
        nested += R"({"a":{"x":)";
    }
    nested += R"({"a":{"b":1}})";
    for (int i = 0; i < 150; ++i) {
        nested += "}}";
    }
    PaddedString nested_padded(nested);
    DescendEngine mixed(automaton::CompiledQuery::compile("$..a.b"), no_head);
    CountSink mixed_sink;
    RunStats mixed_stats = mixed.run_with_stats(nested_padded, mixed_sink);
    EXPECT_EQ(mixed_sink.count(), 1u);
    if constexpr (obs::kEnabled) {
        EXPECT_GT(mixed_stats.max_stack(), 100u);
    }
}

TEST(CheckedApi, CountCheckedPropagatesStatus)
{
    DescendEngine engine = DescendEngine::for_query("$.a");
    CountResult good = engine.count_checked(PaddedString(R"({"a": 1})"));
    EXPECT_TRUE(good.ok());
    EXPECT_EQ(good.count, 1u);

    // A truncated document: the unchecked count() would report this as a
    // plausible-looking number, the checked variant flags it.
    CountResult bad = engine.count_checked(PaddedString(R"({"a": 1, "b":)"));
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.status.code, StatusCode::kUnbalancedStructure);

    CountResult truncated =
        engine.count_checked(PaddedString(R"({"a": "unclosed)"));
    EXPECT_FALSE(truncated.ok());
    EXPECT_EQ(truncated.status.code, StatusCode::kTruncatedString);
}

TEST(CheckedApi, OffsetsCheckedPropagatesStatus)
{
    DescendEngine engine = DescendEngine::for_query("$..b");
    OffsetsResult good =
        engine.offsets_checked(PaddedString(R"({"a": {"b": 2}})"));
    EXPECT_TRUE(good.ok());
    EXPECT_EQ(good.offsets, (std::vector<std::size_t>{12}));

    // Unbalanced input (head-skip mode cannot flag *trailing* content, but
    // balance accounting runs during block classification on every path).
    OffsetsResult bad =
        engine.offsets_checked(PaddedString(R"({"b": [1, 2})"));
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.status.code, StatusCode::kUnbalancedStructure);

    // The unchecked conveniences agree with the checked results on the
    // payload, they just drop the status.
    EXPECT_EQ(engine.count(PaddedString(R"({"a": {"b": 2}})")), 1u);
    EXPECT_EQ(engine.offsets(PaddedString(R"({"a": {"b": 2}})")),
              good.offsets);
}

TEST(CheckedApi, StatusSurvivesTheVirtualInterface)
{
    // Through the base-class pointer the devirtualized overrides must still
    // be reached and still report status.
    DescendEngine engine = DescendEngine::for_query("$.a");
    const JsonPathEngine& generic = engine;
    CountResult bad = generic.count_checked(PaddedString("{\"a\":"));
    EXPECT_FALSE(bad.ok());
    OffsetsResult ok = generic.offsets_checked(PaddedString("{\"a\": 5}"));
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.offsets.size(), 1u);
}

}  // namespace
}  // namespace descend
