/**
 * @file
 * Differential tests pinning the AVX2 kernels to the scalar reference on
 * random and adversarial 64-byte blocks, plus dispatch sanity.
 */
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>

#include "descend/simd/dispatch.h"
#include "descend/workloads/builder.h"

namespace descend::simd {
namespace {

using Block = std::array<std::uint8_t, kBlockSize>;

Block random_block(workloads::Rng& rng, bool json_biased)
{
    Block block;
    static const char kJsonChars[] = "{}[]:,\"\\ \tabc123";
    for (std::size_t i = 0; i < kBlockSize; ++i) {
        if (json_biased) {
            block[i] = static_cast<std::uint8_t>(
                kJsonChars[rng.below(sizeof(kJsonChars) - 1)]);
        } else {
            block[i] = static_cast<std::uint8_t>(rng.next() & 0xff);
        }
    }
    return block;
}

TEST(SimdDispatch, LevelsAreConsistent)
{
    EXPECT_STREQ(scalar_kernels().name, "scalar");
    EXPECT_EQ(scalar_kernels().level, Level::scalar);
    if (avx2_available()) {
        EXPECT_EQ(avx2_kernels().level, Level::avx2);
        EXPECT_STREQ(avx2_kernels().name, "avx2");
    } else {
        EXPECT_EQ(avx2_kernels().level, Level::scalar);
    }
    if (avx512_available()) {
        EXPECT_EQ(avx512_kernels().level, Level::avx512);
        EXPECT_STREQ(avx512_kernels().name, "avx512");
    } else {
        EXPECT_EQ(avx512_kernels().level, Level::scalar);
    }
    EXPECT_EQ(&kernels_for(Level::scalar), &scalar_kernels());
    // best_kernels honours the DESCEND_SIMD_LEVEL cap, so only invariants
    // that hold under any cap value are checked here; kernels_test pins the
    // exact selection per forced tier.
    EXPECT_EQ(best_kernels().level, default_level());
    EXPECT_EQ(&kernels_for(default_level()), &best_kernels());
}

TEST(SimdDispatch, LevelNamesRoundTrip)
{
    for (Level level : {Level::scalar, Level::avx2, Level::avx512}) {
        Level parsed = Level::scalar;
        EXPECT_TRUE(parse_level(level_name(level), parsed));
        EXPECT_EQ(parsed, level);
    }
    Level out = Level::scalar;
    EXPECT_FALSE(parse_level("sse9", out));
    EXPECT_FALSE(parse_level("", out));
    EXPECT_FALSE(parse_level(nullptr, out));
}

TEST(SimdKernels, EqMaskAgainstScalar)
{
    if (!avx2_available()) {
        GTEST_SKIP() << "AVX2 unavailable";
    }
    workloads::Rng rng(11);
    const Kernels& scalar = scalar_kernels();
    const Kernels& avx2 = avx2_kernels();
    for (int trial = 0; trial < 1000; ++trial) {
        Block block = random_block(rng, trial % 2 == 0);
        for (std::uint8_t value : std::initializer_list<std::uint8_t>{
                 '"', '\\', '{', '}', '[', ']', ':', ',', 0x00, 0xff, 0x80}) {
            ASSERT_EQ(scalar.eq_mask(block.data(), value),
                      avx2.eq_mask(block.data(), value))
                << "value " << int(value) << " trial " << trial;
        }
    }
}

TEST(SimdKernels, ClassifyAgainstScalar)
{
    if (!avx2_available()) {
        GTEST_SKIP() << "AVX2 unavailable";
    }
    workloads::Rng rng(13);
    const Kernels& scalar = scalar_kernels();
    const Kernels& avx2 = avx2_kernels();
    for (int trial = 0; trial < 1000; ++trial) {
        Block block = random_block(rng, trial % 2 == 0);
        std::array<std::uint8_t, 16> ltab;
        std::array<std::uint8_t, 16> utab;
        for (auto& entry : ltab) {
            entry = static_cast<std::uint8_t>(rng.next() & 0xff);
        }
        for (auto& entry : utab) {
            entry = static_cast<std::uint8_t>(rng.next() & 0xff);
        }
        ASSERT_EQ(scalar.classify_eq(block.data(), ltab.data(), utab.data()),
                  avx2.classify_eq(block.data(), ltab.data(), utab.data()))
            << trial;
        ASSERT_EQ(scalar.classify_or(block.data(), ltab.data(), utab.data()),
                  avx2.classify_or(block.data(), ltab.data(), utab.data()))
            << trial;
        ASSERT_EQ(scalar.classify_eq_masked(block.data(), ltab.data(), utab.data()),
                  avx2.classify_eq_masked(block.data(), ltab.data(), utab.data()))
            << trial;
        ASSERT_EQ(scalar.classify_or_masked(block.data(), ltab.data(), utab.data()),
                  avx2.classify_or_masked(block.data(), ltab.data(), utab.data()))
            << trial;
    }
}

TEST(SimdKernels, PrefixXorAgainstScalar)
{
    if (!avx2_available()) {
        GTEST_SKIP() << "AVX2 unavailable";
    }
    workloads::Rng rng(17);
    for (int trial = 0; trial < 5000; ++trial) {
        std::uint64_t mask = rng.next();
        ASSERT_EQ(scalar_kernels().prefix_xor(mask), avx2_kernels().prefix_xor(mask));
    }
    EXPECT_EQ(avx2_kernels().prefix_xor(0), 0u);
    EXPECT_EQ(avx2_kernels().prefix_xor(1), ~0ULL);
}

TEST(SimdKernels, EqMaskFindsExactPositions)
{
    Block block{};
    std::memset(block.data(), 'x', kBlockSize);
    block[0] = '{';
    block[63] = '{';
    block[31] = '{';
    std::uint64_t mask = best_kernels().eq_mask(block.data(), '{');
    EXPECT_EQ(mask, (1ULL << 0) | (1ULL << 31) | (1ULL << 63));
}

TEST(SimdKernels, HighBitBytesNeverMatchShuffleLookups)
{
    // The shuffle MSB rule: bytes >= 0x80 must classify via utab only, with
    // the lower-nibble lookup forced to zero, identically on both paths.
    Block block;
    for (std::size_t i = 0; i < kBlockSize; ++i) {
        block[i] = static_cast<std::uint8_t>(0x80 + i);
    }
    std::array<std::uint8_t, 16> ltab;
    ltab.fill(0x01);
    std::array<std::uint8_t, 16> utab;
    utab.fill(0x01);
    // lower==upper would match everywhere, but MSB forces lower to 0.
    EXPECT_EQ(scalar_kernels().classify_eq(block.data(), ltab.data(), utab.data()), 0u);
    if (avx2_available()) {
        EXPECT_EQ(avx2_kernels().classify_eq(block.data(), ltab.data(), utab.data()),
                  0u);
    }
}

}  // namespace
}  // namespace descend::simd
