/**
 * @file
 * JSONPath parser tests: the paper's grammar, bracket notation, escapes,
 * extensions, and error reporting.
 */
#include <gtest/gtest.h>

#include "descend/query/query.h"
#include "descend/util/errors.h"

namespace descend::query {
namespace {

TEST(QueryParser, RootOnly)
{
    Query q = Query::parse("$");
    EXPECT_EQ(q.size(), 0u);
    ASSERT_EQ(q.selectors().size(), 1u);
    EXPECT_EQ(q.selectors()[0].kind, SelectorKind::kRoot);
    EXPECT_FALSE(q.has_descendants());
    EXPECT_EQ(q.to_string(), "$");
}

TEST(QueryParser, DotChildren)
{
    Query q = Query::parse("$.a.bc.d_e-f");
    ASSERT_EQ(q.size(), 3u);
    EXPECT_EQ(q.selectors()[1].kind, SelectorKind::kChild);
    EXPECT_EQ(q.selectors()[1].label, "a");
    EXPECT_EQ(q.selectors()[2].label, "bc");
    EXPECT_EQ(q.selectors()[3].label, "d_e-f");
    EXPECT_EQ(q.to_string(), "$.a.bc.d_e-f");
}

TEST(QueryParser, WildcardsAndDescendants)
{
    Query q = Query::parse("$.a..b.*..*");
    ASSERT_EQ(q.size(), 4u);
    EXPECT_EQ(q.selectors()[1].kind, SelectorKind::kChild);
    EXPECT_EQ(q.selectors()[2].kind, SelectorKind::kDescendant);
    EXPECT_EQ(q.selectors()[2].label, "b");
    EXPECT_EQ(q.selectors()[3].kind, SelectorKind::kChildWildcard);
    EXPECT_EQ(q.selectors()[4].kind, SelectorKind::kDescendantWildcard);
    EXPECT_TRUE(q.has_descendants());
    EXPECT_EQ(q.to_string(), "$.a..b.*..*");
}

TEST(QueryParser, BracketNotation)
{
    Query q = Query::parse(R"($['a']["b c"][*][3]..['d'])");
    ASSERT_EQ(q.size(), 5u);
    EXPECT_EQ(q.selectors()[1].kind, SelectorKind::kChild);
    EXPECT_EQ(q.selectors()[1].label, "a");
    EXPECT_EQ(q.selectors()[2].label, "b c");
    EXPECT_EQ(q.selectors()[3].kind, SelectorKind::kChildWildcard);
    EXPECT_EQ(q.selectors()[4].kind, SelectorKind::kChildIndex);
    EXPECT_EQ(q.selectors()[4].index, 3u);
    EXPECT_EQ(q.selectors()[5].kind, SelectorKind::kDescendant);
    EXPECT_EQ(q.selectors()[5].label, "d");
    EXPECT_TRUE(q.has_indices());
}

TEST(QueryParser, PaperTableQueries)
{
    // Queries from the paper's Table 4/5/6 must all parse.
    for (const char* text :
         {"$.products.*.categoryPath.*.id", "$.products.*.videoChapters",
          "$.*.routes.*.legs.*.steps.*.distance.text", "$.meta.view.columns.*.name",
          "$.data.*.*.*", "$..categoryPath..id", "$..videoChapters..chapter",
          "$..available_travel_modes", "$..bestMarketplacePrice.price",
          "$..decl.name", "$..inner..inner..type.qualType", "$..DOI",
          "$.items.*.author.*.affiliation.*.name", "$..P150..mainsnak.property",
          "$.search_metadata.count", "$..count",
          "$.products[*].categoryPath[*].id", "$[*].claims.P150[*].mainsnak.property"}) {
        EXPECT_NO_THROW(Query::parse(text)) << text;
    }
}

TEST(QueryParser, EscapedLabels)
{
    Query q = Query::parse(R"($['he said \"hi\"'])");
    EXPECT_EQ(q.selectors()[1].label, R"(he said "hi")");
    EXPECT_EQ(q.selectors()[1].label_escaped, R"(he said \"hi\")");

    Query backslash = Query::parse(R"($['a\\b'])");
    EXPECT_EQ(backslash.selectors()[1].label, R"(a\b)");
    EXPECT_EQ(backslash.selectors()[1].label_escaped, R"(a\\b)");

    Query unicode = Query::parse(R"($['A'])");
    EXPECT_EQ(unicode.selectors()[1].label, "A");

    Query control = Query::parse(R"($['tab\there'])");
    EXPECT_EQ(control.selectors()[1].label, "tab\there");
    EXPECT_EQ(control.selectors()[1].label_escaped, R"(tab\there)");
}

TEST(QueryParser, UnicodeEscapesDecodeToUtf8)
{
    // BMP code point: three UTF-8 bytes.
    Query bmp = Query::parse(R"($['€'])");
    EXPECT_EQ(bmp.selectors()[1].label, "\xE2\x82\xAC");

    // UTF-16 surrogate pair for U+1F600: decoded as ONE code point into
    // four UTF-8 bytes — the raw encoding a JSON document uses for the
    // key, so label matching works byte-for-byte against unescaped
    // documents.
    Query pair = Query::parse("$['\\uD83D\\uDE00']");
    EXPECT_EQ(pair.selectors()[1].label, "\xF0\x9F\x98\x80");
}

TEST(QueryParser, RejectsLoneSurrogates)
{
    for (const char* bad : {
             R"($['\uD83D'])",        // lone high surrogate
             R"($['\uDE00'])",        // lone low surrogate
             "$['\\uD83D\\u0041']",   // high surrogate + non-surrogate \u
             R"($['\uD83D\uD83D'])",  // high surrogate twice
             R"($['\uD83Dx'])",       // high surrogate + raw char
             R"($['\uD83D\n'])",      // high surrogate + other escape
             R"($['\uD8'])",          // truncated hex
             R"($['\uZZZZ'])",        // bad hex digits
         }) {
        EXPECT_THROW(Query::parse(bad), QueryError) << "query: " << bad;
    }
}

TEST(QueryParser, RejectsMalformedQueries)
{
    for (const char* bad :
         {"", "a", ".a", "$.", "$..", "$a", "$.a.", "$[", "$[]", "$['a'",
          "$['a]", "$[a]", "$[-1]", "$[1.5]", "$.a..", "$...a", "$ .a",
          "$.['a']", "$..[", "$[99999999999999999999]", "$[*", "$.*x"}) {
        EXPECT_THROW(Query::parse(bad), QueryError) << "query: " << bad;
    }
}

TEST(QueryParser, DescendantIndexUnsupported)
{
    EXPECT_THROW(Query::parse("$..[3]"), QueryError);
}

TEST(QueryParser, ErrorsCarryPositions)
{
    try {
        Query::parse("$.a.[b]");
        FAIL() << "expected QueryError";
    } catch (const QueryError& error) {
        EXPECT_GE(error.position(), 3u);
    }
}

}  // namespace
}  // namespace descend::query
