/**
 * @file
 * JSONPath parser tests: the paper's grammar, bracket notation, escapes,
 * extensions, and error reporting.
 */
#include <gtest/gtest.h>

#include "descend/query/query.h"
#include "descend/util/errors.h"

namespace descend::query {
namespace {

TEST(QueryParser, RootOnly)
{
    Query q = Query::parse("$");
    EXPECT_EQ(q.size(), 0u);
    ASSERT_EQ(q.selectors().size(), 1u);
    EXPECT_EQ(q.selectors()[0].kind, SelectorKind::kRoot);
    EXPECT_FALSE(q.has_descendants());
    EXPECT_EQ(q.to_string(), "$");
}

TEST(QueryParser, DotChildren)
{
    Query q = Query::parse("$.a.bc.d_e-f");
    ASSERT_EQ(q.size(), 3u);
    EXPECT_EQ(q.selectors()[1].kind, SelectorKind::kChild);
    EXPECT_EQ(q.selectors()[1].label, "a");
    EXPECT_EQ(q.selectors()[2].label, "bc");
    EXPECT_EQ(q.selectors()[3].label, "d_e-f");
    EXPECT_EQ(q.to_string(), "$.a.bc.d_e-f");
}

TEST(QueryParser, WildcardsAndDescendants)
{
    Query q = Query::parse("$.a..b.*..*");
    ASSERT_EQ(q.size(), 4u);
    EXPECT_EQ(q.selectors()[1].kind, SelectorKind::kChild);
    EXPECT_EQ(q.selectors()[2].kind, SelectorKind::kDescendant);
    EXPECT_EQ(q.selectors()[2].label, "b");
    EXPECT_EQ(q.selectors()[3].kind, SelectorKind::kChildWildcard);
    EXPECT_EQ(q.selectors()[4].kind, SelectorKind::kDescendantWildcard);
    EXPECT_TRUE(q.has_descendants());
    EXPECT_EQ(q.to_string(), "$.a..b.*..*");
}

TEST(QueryParser, BracketNotation)
{
    Query q = Query::parse(R"($['a']["b c"][*][3]..['d'])");
    ASSERT_EQ(q.size(), 5u);
    EXPECT_EQ(q.selectors()[1].kind, SelectorKind::kChild);
    EXPECT_EQ(q.selectors()[1].label, "a");
    EXPECT_EQ(q.selectors()[2].label, "b c");
    EXPECT_EQ(q.selectors()[3].kind, SelectorKind::kChildWildcard);
    EXPECT_EQ(q.selectors()[4].kind, SelectorKind::kChildIndex);
    EXPECT_EQ(q.selectors()[4].index, 3u);
    EXPECT_EQ(q.selectors()[5].kind, SelectorKind::kDescendant);
    EXPECT_EQ(q.selectors()[5].label, "d");
    EXPECT_TRUE(q.has_indices());
}

TEST(QueryParser, PaperTableQueries)
{
    // Queries from the paper's Table 4/5/6 must all parse.
    for (const char* text :
         {"$.products.*.categoryPath.*.id", "$.products.*.videoChapters",
          "$.*.routes.*.legs.*.steps.*.distance.text", "$.meta.view.columns.*.name",
          "$.data.*.*.*", "$..categoryPath..id", "$..videoChapters..chapter",
          "$..available_travel_modes", "$..bestMarketplacePrice.price",
          "$..decl.name", "$..inner..inner..type.qualType", "$..DOI",
          "$.items.*.author.*.affiliation.*.name", "$..P150..mainsnak.property",
          "$.search_metadata.count", "$..count",
          "$.products[*].categoryPath[*].id", "$[*].claims.P150[*].mainsnak.property"}) {
        EXPECT_NO_THROW(Query::parse(text)) << text;
    }
}

TEST(QueryParser, EscapedLabels)
{
    Query q = Query::parse(R"($['he said \"hi\"'])");
    EXPECT_EQ(q.selectors()[1].label, R"(he said "hi")");
    EXPECT_EQ(q.selectors()[1].label_escaped, R"(he said \"hi\")");

    Query backslash = Query::parse(R"($['a\\b'])");
    EXPECT_EQ(backslash.selectors()[1].label, R"(a\b)");
    EXPECT_EQ(backslash.selectors()[1].label_escaped, R"(a\\b)");

    Query unicode = Query::parse(R"($['A'])");
    EXPECT_EQ(unicode.selectors()[1].label, "A");

    Query control = Query::parse(R"($['tab\there'])");
    EXPECT_EQ(control.selectors()[1].label, "tab\there");
    EXPECT_EQ(control.selectors()[1].label_escaped, R"(tab\there)");
}

TEST(QueryParser, UnicodeEscapesDecodeToUtf8)
{
    // BMP code point: three UTF-8 bytes.
    Query bmp = Query::parse(R"($['€'])");
    EXPECT_EQ(bmp.selectors()[1].label, "\xE2\x82\xAC");

    // UTF-16 surrogate pair for U+1F600: decoded as ONE code point into
    // four UTF-8 bytes — the raw encoding a JSON document uses for the
    // key, so label matching works byte-for-byte against unescaped
    // documents.
    Query pair = Query::parse("$['\\uD83D\\uDE00']");
    EXPECT_EQ(pair.selectors()[1].label, "\xF0\x9F\x98\x80");
}

TEST(QueryParser, RejectsLoneSurrogates)
{
    for (const char* bad : {
             R"($['\uD83D'])",        // lone high surrogate
             R"($['\uDE00'])",        // lone low surrogate
             "$['\\uD83D\\u0041']",   // high surrogate + non-surrogate \u
             R"($['\uD83D\uD83D'])",  // high surrogate twice
             R"($['\uD83Dx'])",       // high surrogate + raw char
             R"($['\uD83D\n'])",      // high surrogate + other escape
             R"($['\uD8'])",          // truncated hex
             R"($['\uZZZZ'])",        // bad hex digits
         }) {
        EXPECT_THROW(Query::parse(bad), QueryError) << "query: " << bad;
    }
}

TEST(QueryParser, RejectsMalformedQueries)
{
    for (const char* bad :
         {"", "a", ".a", "$.", "$..", "$a", "$.a.", "$[", "$[]", "$['a'",
          "$['a]", "$[a]", "$[-1]", "$[1.5]", "$.a..", "$...a", "$ .a",
          "$.['a']", "$..[", "$[99999999999999999999]", "$[*", "$.*x"}) {
        EXPECT_THROW(Query::parse(bad), QueryError) << "query: " << bad;
    }
}

TEST(QueryParser, DescendantIndexUnsupported)
{
    EXPECT_THROW(Query::parse("$..[3]"), QueryError);
}

TEST(QueryParser, QuotedBracketIsCanonicalChildSugar)
{
    // $['a'] and $["a"] are surface spellings of $.a: same selector, one
    // canonical rendering — so multi-query dedup and serve cache keys
    // treat them as the same query.
    Query bracket = Query::parse("$['a']");
    ASSERT_EQ(bracket.size(), 1u);
    EXPECT_EQ(bracket.selectors()[1].kind, SelectorKind::kChild);
    EXPECT_EQ(bracket.to_string(), "$.a");
    EXPECT_EQ(Query::parse(R"($["a"])").to_string(), "$.a");
    EXPECT_EQ(Query::parse("$.a").to_string(), bracket.to_string());
}

TEST(QueryParser, CanonicalStringsDoNotCollide)
{
    // Regression: to_string used to render every child selector in dot
    // form, so $['a.b'] printed as "$.a.b" — which re-parses as TWO
    // selectors. Canonical strings key multi-query dedup and the serve
    // cache; a collision silently merges distinct queries.
    Query dotted = Query::parse("$['a.b']");
    ASSERT_EQ(dotted.size(), 1u);
    EXPECT_EQ(dotted.to_string(), "$['a.b']");
    EXPECT_EQ(Query::parse(dotted.to_string()).size(), 1u);
    EXPECT_NE(dotted.to_string(), Query::parse("$.a.b").to_string());
}

TEST(QueryParser, ToStringIsAFixpointOfParse)
{
    for (const char* text :
         {"$", "$.a..b.*..*", "$['a.b']", "$['a b']",
          R"($['he said \"hi\"'])", "$['*']", R"($['a\\b'])",
          "$['tab\\there']", "$[0]", "$[3][7]", "$[1:4]", "$[2:]", "$[:]",
          "$['a','b']", "$['b','a','c']..x", "$.a[?(@.b.c<10)]",
          "$.a[?(@.x=='s')]", "$..y[?(@.z)]", "$[?(@.a!=true)]",
          "$[?(@.a==null)]", "$[?(@.a>=2.5)]"}) {
        Query q = Query::parse(text);
        std::string canonical = q.to_string();
        EXPECT_EQ(Query::parse(canonical).to_string(), canonical)
            << "source: " << text;
    }
}

TEST(QueryParser, SliceSelectors)
{
    Query q = Query::parse("$[1:4]");
    ASSERT_EQ(q.size(), 1u);
    EXPECT_EQ(q.selectors()[1].kind, SelectorKind::kChildSlice);
    EXPECT_EQ(q.selectors()[1].slice_lo, 1u);
    EXPECT_EQ(q.selectors()[1].slice_hi, 4u);
    EXPECT_TRUE(q.has_indices());
    EXPECT_EQ(q.to_string(), "$[1:4]");

    Query open = Query::parse("$[2:]");
    EXPECT_EQ(open.selectors()[1].slice_lo, 2u);
    EXPECT_EQ(open.selectors()[1].slice_hi, kSliceUnbounded);
    EXPECT_EQ(open.to_string(), "$[2:]");

    // Lo defaults to 0; an explicit unit step is accepted and canonically
    // dropped; an empty slice parses (it just selects nothing).
    EXPECT_EQ(Query::parse("$[:3]").to_string(), "$[0:3]");
    EXPECT_EQ(Query::parse("$[:]").to_string(), "$[0:]");
    EXPECT_EQ(Query::parse("$[1:4:1]").to_string(), "$[1:4]");
    EXPECT_EQ(Query::parse("$[ 1 : 4 ]").to_string(), "$[1:4]");
    EXPECT_EQ(Query::parse("$[5:2]").to_string(), "$[5:2]");
}

TEST(QueryParser, UnionSelectors)
{
    Query q = Query::parse("$['b','a','b']");
    ASSERT_EQ(q.size(), 1u);
    EXPECT_EQ(q.selectors()[1].kind, SelectorKind::kChildUnion);
    // Members are a set: sorted and deduplicated.
    ASSERT_EQ(q.selectors()[1].union_members.size(), 2u);
    EXPECT_EQ(q.selectors()[1].union_members[0].text, "a");
    EXPECT_EQ(q.selectors()[1].union_members[1].text, "b");
    EXPECT_EQ(q.to_string(), "$['a','b']");
    EXPECT_EQ(Query::parse("$['a','b']").to_string(),
              Query::parse("$['b','a']").to_string());

    // A union that collapses to one member is a plain child selector.
    Query collapsed = Query::parse("$['a','a']");
    EXPECT_EQ(collapsed.selectors()[1].kind, SelectorKind::kChild);
    EXPECT_EQ(collapsed.to_string(), "$.a");
}

TEST(QueryParser, FilterSelectors)
{
    Query q = Query::parse("$.a[?(@.b.c>=1.5)]");
    ASSERT_NE(q.filter(), nullptr);
    EXPECT_EQ(q.filter()->op, FilterOp::kGe);
    ASSERT_EQ(q.filter()->steps.size(), 2u);
    EXPECT_EQ(q.filter()->steps[0].text, "b");
    EXPECT_EQ(q.filter()->steps[1].text, "c");
    EXPECT_EQ(q.filter()->literal.kind, FilterLiteral::Kind::kNumber);
    EXPECT_EQ(q.to_string(), "$.a[?(@.b.c>=1.5)]");

    EXPECT_EQ(Query::parse("$[?(@.x)]").filter()->op, FilterOp::kExists);
    EXPECT_EQ(Query::parse("$[?(@['k 1']=='v')]").to_string(),
              "$[?(@['k 1']=='v')]");
    EXPECT_EQ(Query::parse("$[?( @.x == 2 )]").to_string(), "$[?(@.x==2)]");
}

TEST(QueryParser, FilterNumericLiteralsCompareNumerically)
{
    // Regression: 1, 1.0 and 1e0 are one number. Literals are parsed once
    // at compile time through the strict JSON grammar, so every spelling
    // lands on the same canonical rendering (and the same predicate).
    std::string canonical = Query::parse("$.a[?(@.x==1)]").to_string();
    EXPECT_EQ(Query::parse("$.a[?(@.x==1.0)]").to_string(), canonical);
    EXPECT_EQ(Query::parse("$.a[?(@.x==1e0)]").to_string(), canonical);
    EXPECT_EQ(Query::parse("$.a[?(@.x==10e-1)]").to_string(), canonical);
    EXPECT_EQ(Query::parse("$.a[?(@.x==0.25e1)]").to_string(),
              Query::parse("$.a[?(@.x==2.5)]").to_string());
}

TEST(QueryParser, RejectsUnsupportedSelectorForms)
{
    for (const char* bad :
         {"$[-1]", "$[1.5]", "$[1:-1]", "$[-2:]", "$[1:4:2]", "$[1:4:0]",
          "$..[1:2]", "$..['a','b']", "$..[?(@.x)]", "$.a[?(@.x)].y",
          "$[?(@..x)]", "$[?(@.x==01)]", "$[?(@.x==+1)]", "$[?(@.x==1.)]",
          "$['a',]", "$['a',3]", "$[1:4", "$[?(@.x>)]", "$[?(@.x=1)]",
          "$[?(@)]==1", "$[?(@.x==tru)]", "$[?(@.x==nulll)]"}) {
        EXPECT_THROW(Query::parse(bad), QueryError) << "query: " << bad;
    }
}

TEST(QueryParser, ErrorsCarryPositions)
{
    try {
        Query::parse("$.a.[b]");
        FAIL() << "expected QueryError";
    } catch (const QueryError& error) {
        EXPECT_GE(error.position(), 3u);
    }
}

}  // namespace
}  // namespace descend::query
