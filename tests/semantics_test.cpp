/**
 * @file
 * Node vs path semantics (paper Section 2 and Appendix D): reproduces the
 * comparison experiment on the paper's example document with the query
 * $..person..name — node semantics yields ["A","B","C","D"], path
 * semantics duplicates C and D.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "descend/baselines/dom_engine.h"
#include "descend/descend.h"
#include "descend/json/dom.h"

namespace descend {
namespace {

/** The Appendix D document (values shortened as in the paper). */
const char* kAppendixDocument = R"({
  "person": {
    "name": "A",
    "spouse": {
      "name": "B"
    },
    "children": [
      {
        "person": {
          "name": "C"
        }
      },
      {
        "person": {
          "name": "D"
        }
      }
    ]
  }
})";

std::vector<std::string> values_at(const PaddedString& document,
                                   const std::vector<std::size_t>& offsets)
{
    std::vector<std::string> values;
    for (std::string_view value : extract_values(document, offsets)) {
        values.emplace_back(value);
    }
    return values;
}

TEST(Semantics, NodeSemanticsReturnsFourNames)
{
    PaddedString document(kAppendixDocument);
    auto engine = DescendEngine::for_query("$..person..name");
    auto values = values_at(document, engine.offsets(document));
    EXPECT_EQ(values, (std::vector<std::string>{"\"A\"", "\"B\"", "\"C\"", "\"D\""}));
}

TEST(Semantics, PathSemanticsDuplicatesNestedMatches)
{
    json::Document dom = json::parse(kAppendixDocument);
    DomEngine oracle(query::Query::parse("$..person..name"));
    PaddedString document(kAppendixDocument);
    auto path_offsets = oracle.evaluate_path_semantics(dom.root());
    auto values = values_at(document, path_offsets);
    // C and D are reachable through two ..person matches each: 6 results.
    ASSERT_EQ(values.size(), 6u);
    std::vector<std::string> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<std::string>{"\"A\"", "\"B\"", "\"C\"", "\"C\"",
                                                "\"D\"", "\"D\""}));
}

TEST(Semantics, ExponentialPathMultiplicity)
{
    // Section 2: in {a:{a:{a:{b:"Yay!"}}}} the query $..a..b selects Yay!
    // once under node semantics, three times under path semantics.
    const char* document = R"({"a":{"a":{"a":{"b":"Yay!"}}}})";
    PaddedString padded(document);
    auto engine = DescendEngine::for_query("$..a..b");
    EXPECT_EQ(engine.count(padded), 1u);

    json::Document dom = json::parse(document);
    DomEngine oracle(query::Query::parse("$..a..b"));
    EXPECT_EQ(oracle.evaluate_path_semantics(dom.root()).size(), 3u);
}

TEST(Semantics, PathAndNodeAgreeWithoutDescendants)
{
    const char* document = R"({"a": {"b": [1, 2]}, "c": {"b": 3}})";
    json::Document dom = json::parse(document);
    for (const char* query : {"$.a.b", "$.*.b", "$.a.b.*"}) {
        DomEngine oracle(query::Query::parse(query));
        PaddedString padded(document);
        EXPECT_EQ(oracle.evaluate_path_semantics(dom.root()).size(),
                  oracle.offsets(padded).size())
            << query;
    }
}

}  // namespace
}  // namespace descend
