/**
 * @file
 * Node vs path semantics (paper Section 2 and Appendix D): reproduces the
 * comparison experiment on the paper's example document with the query
 * $..person..name — node semantics yields ["A","B","C","D"], path
 * semantics duplicates C and D.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "descend/baselines/dom_engine.h"
#include "descend/descend.h"
#include "descend/json/dom.h"
#include "test_helpers.h"

namespace descend {
namespace {

/** The Appendix D document (values shortened as in the paper). */
const char* kAppendixDocument = R"({
  "person": {
    "name": "A",
    "spouse": {
      "name": "B"
    },
    "children": [
      {
        "person": {
          "name": "C"
        }
      },
      {
        "person": {
          "name": "D"
        }
      }
    ]
  }
})";

std::vector<std::string> values_at(const PaddedString& document,
                                   const std::vector<std::size_t>& offsets)
{
    std::vector<std::string> values;
    for (std::string_view value : extract_values(document, offsets)) {
        values.emplace_back(value);
    }
    return values;
}

TEST(Semantics, NodeSemanticsReturnsFourNames)
{
    PaddedString document(kAppendixDocument);
    auto engine = DescendEngine::for_query("$..person..name");
    auto values = values_at(document, engine.offsets(document));
    EXPECT_EQ(values, (std::vector<std::string>{"\"A\"", "\"B\"", "\"C\"", "\"D\""}));
}

TEST(Semantics, PathSemanticsDuplicatesNestedMatches)
{
    json::Document dom = json::parse(kAppendixDocument);
    DomEngine oracle(query::Query::parse("$..person..name"));
    PaddedString document(kAppendixDocument);
    auto path_offsets = oracle.evaluate_path_semantics(dom.root());
    auto values = values_at(document, path_offsets);
    // C and D are reachable through two ..person matches each: 6 results.
    ASSERT_EQ(values.size(), 6u);
    std::vector<std::string> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<std::string>{"\"A\"", "\"B\"", "\"C\"", "\"C\"",
                                                "\"D\"", "\"D\""}));
}

TEST(Semantics, ExponentialPathMultiplicity)
{
    // Section 2: in {a:{a:{a:{b:"Yay!"}}}} the query $..a..b selects Yay!
    // once under node semantics, three times under path semantics.
    const char* document = R"({"a":{"a":{"a":{"b":"Yay!"}}}})";
    PaddedString padded(document);
    auto engine = DescendEngine::for_query("$..a..b");
    EXPECT_EQ(engine.count(padded), 1u);

    json::Document dom = json::parse(document);
    DomEngine oracle(query::Query::parse("$..a..b"));
    EXPECT_EQ(oracle.evaluate_path_semantics(dom.root()).size(), 3u);
}

// ---------------------------------------------------------------------
// Extended-selector semantics rows (DESIGN.md §4.12): each row states the
// expected match count explicitly; expect_count asserts the DOM oracle
// agrees with the stated count AND that every streaming configuration at
// every SIMD tier (plus the surfer baseline) reproduces the oracle's
// offsets exactly. The filter rows pin the lazy-evaluation contract to
// the DOM-side mirror.
// ---------------------------------------------------------------------

using testing::expect_count;

TEST(SelectorSemantics, SliceRows)
{
    const char* array = R"([10, [11], {"x": 12}, 13, 14])";
    expect_count("$[1:3]", array, 2);
    expect_count("$[0:1]", array, 1);
    expect_count("$[2:]", array, 3);
    expect_count("$[:]", array, 5);
    expect_count("$[0:100]", array, 5);   // hi past the end: clipped
    expect_count("$[5:9]", array, 0);     // out of bounds entirely
    expect_count("$[3:3]", array, 0);     // empty slice
    expect_count("$[5:2]", array, 0);     // empty slice, hi < lo
    expect_count("$[9]", array, 0);       // out-of-bounds index
    expect_count("$[1:3]", R"({"0": 1, "1": 2, "2": 3})", 0);  // objects don't count
    expect_count("$.a[1:].b", R"({"a": [{"b": 1}, {"b": 2}, {"c": 3}, {"b": 4}]})", 2);
    expect_count("$[0:2][1:]", R"([[1, 2, 3], [4], [5, 6]])", 2);
}

TEST(SelectorSemantics, UnionRows)
{
    const char* doc = R"({"a": 1, "b": {"a": 2}, "c": [3], "d": 4})";
    expect_count("$['a','c']", doc, 2);
    expect_count("$['a','z']", doc, 1);
    expect_count("$['x','y']", doc, 0);
    expect_count("$['b','c'].a", doc, 1);
    expect_count("$.*['a','d']", doc, 1);  // nested a under b
    expect_count("$['a','b','c','d']", doc, 4);
}

TEST(SelectorSemantics, FilterExistenceAndComparisons)
{
    const char* doc =
        R"([{"x": 1}, {"x": 2, "y": 5}, {"y": 7}, {"x": "2"}, 3, [4]])";
    expect_count("$[?(@.x)]", doc, 3);          // existence, any type
    expect_count("$[?(@.x==2)]", doc, 1);       // "2" (string) is not 2
    expect_count("$[?(@.x!=2)]", doc, 2);       // != only among resolvable
    expect_count("$[?(@.x<2)]", doc, 1);
    expect_count("$[?(@.x<=2)]", doc, 2);
    expect_count("$[?(@.x>1)]", doc, 1);
    expect_count("$[?(@.x>='1')]", doc, 1);     // string/string ordering
    expect_count("$[?(@.z==1)]", doc, 0);       // unresolved chain: false
    expect_count("$[?(@.z!=1)]", doc, 0);       // ... including for !=
}

TEST(SelectorSemantics, FilterNumericLiteralSpellings)
{
    // 1, 1.0 and 1e0 are the same number; document spellings too.
    const char* doc = R"([{"x": 1}, {"x": 1.0}, {"x": 1e0}, {"x": 10e-1}, {"x": 10}])";
    expect_count("$[?(@.x==1)]", doc, 4);
    expect_count("$[?(@.x==1.0)]", doc, 4);
    expect_count("$[?(@.x==1e0)]", doc, 4);
    expect_count("$[?(@.x!=1)]", doc, 1);
    expect_count("$[?(@.x>=1)]", doc, 5);
}

TEST(SelectorSemantics, FilterTypedLiteralsAndChains)
{
    const char* doc = R"({"a": [
        {"k": true, "v": 1}, {"k": false}, {"k": null},
        {"k": {"n": 3}}, {"k": {"n": "s"}}, {"k": [3]}
    ]})";
    expect_count("$.a[?(@.k==true)]", doc, 1);
    expect_count("$.a[?(@.k!=true)]", doc, 5);
    expect_count("$.a[?(@.k==null)]", doc, 1);
    expect_count("$.a[?(@.k.n==3)]", doc, 1);    // chained steps
    expect_count("$.a[?(@.k.n)]", doc, 2);       // existence through chain
    expect_count("$.a[?(@.k.n=='s')]", doc, 1);
    // Cross-type comparisons are uniformly false.
    expect_count("$.a[?(@.k<1)]", doc, 0);
    expect_count("$.a[?(@.v=='1')]", doc, 0);
    expect_count("$.a[?(@.v==true)]", doc, 0);
}

TEST(SelectorSemantics, FilterAfterDescendant)
{
    // The filter itself is child-only and final, but the path to the
    // candidate array may use any supported selector.
    const char* doc =
        R"({"l": [{"x": 1}, {"x": 9}], "d": {"l": [{"x": 9}]}})";
    expect_count("$..l[?(@.x>5)]", doc, 2);
    expect_count("$.d.l[?(@.x>5)]", doc, 1);
    expect_count("$..*[?(@.x)]", doc, 3);
}

TEST(SelectorSemantics, PathAndNodeAgreeOnExtendedSelectors)
{
    const char* document =
        R"({"a": [{"x": 1}, {"x": 2}, {"y": 3}], "b": [4, 5]})";
    json::Document dom = json::parse(document);
    for (const char* query :
         {"$.a[1:3]", "$['a','b'][0]", "$.a[?(@.x>=2)]", "$.b[1:]"}) {
        DomEngine oracle(query::Query::parse(query));
        PaddedString padded(document);
        EXPECT_EQ(oracle.evaluate_path_semantics(dom.root()).size(),
                  oracle.offsets(padded).size())
            << query;
    }
}

TEST(Semantics, PathAndNodeAgreeWithoutDescendants)
{
    const char* document = R"({"a": {"b": [1, 2]}, "c": {"b": 3}})";
    json::Document dom = json::parse(document);
    for (const char* query : {"$.a.b", "$.*.b", "$.a.b.*"}) {
        DomEngine oracle(query::Query::parse(query));
        PaddedString padded(document);
        EXPECT_EQ(oracle.evaluate_path_semantics(dom.root()).size(),
                  oracle.offsets(padded).size())
            << query;
    }
}

}  // namespace
}  // namespace descend
