/**
 * @file
 * The projection subsystem (src/descend/project): span extension against
 * the scalar extraction oracle across SIMD tiers, every sink against
 * DOM-oracle extraction across fused backends, the NDJSON record-boundary
 * contract, the LazyValue invariants of lazy_value.h, and the serve
 * protocol's projected-values body (round-trip, truncation, admission).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "descend/descend.h"
#include "descend/multi/fused.h"
#include "descend/serve/dispatch.h"
#include "descend/serve/protocol.h"
#include "descend/serve/query_cache.h"
#include "descend/stream/record_splitter.h"
#include "test_helpers.h"

namespace descend {
namespace {

using project::CountingProjectionSink;
using project::LazyValue;
using project::NdjsonSink;
using project::ProjectingMatchSink;
using project::SliceSink;
using project::SpanExtender;
using project::ValueSpan;

const std::vector<simd::Level> kTiers = {
    simd::Level::scalar, simd::Level::avx2, simd::Level::avx512};

/** All value-start offsets of @p document per the DOM oracle of $..*,
 *  plus the document root itself: every value is an extension subject. */
std::vector<std::size_t> every_value_offset(const std::string& document)
{
    std::vector<std::size_t> offsets = testing::oracle_offsets("$..*", document);
    offsets.push_back(0);
    std::sort(offsets.begin(), offsets.end());
    offsets.erase(std::unique(offsets.begin(), offsets.end()), offsets.end());
    return offsets;
}

// ---------------------------------------------------------------------------
// SpanExtender: differential against the scalar oracle, per tier.
// ---------------------------------------------------------------------------

/** Documents chosen to cross every extension path: values within one
 *  block, values crossing a block boundary, subtrees long enough for the
 *  lean walk AND the batch-ring handoff (> 7 blocks), escapes at nasty
 *  positions, UTF-8 keys, zero-length values. */
std::vector<std::string> torture_documents()
{
    std::vector<std::string> documents = {
        "{}",
        "[]",
        "\"\"",
        "7",
        "{\"a\": 1, \"b\": [1, 2, 3], \"c\": {\"d\": null}}",
        "{\"key\": \"value with \\\" escaped quote\", \"b\": \"\\\\\"}",
        "{\"\\u00fcml\\u00e4ut\": {\"snowman\u2603\": [true, false]},"
        " \"\u00e9\": \"caf\u00e9 \\n newline\"}",
        "{\"empty_string\": \"\", \"empty_object\": {}, \"empty_array\": [],"
        " \"zero\": 0}",
        "[[[[[[[[1]]]]]]]]",
    };
    // A string spanning many blocks, with backslash runs straddling the
    // 64-byte boundaries (the escape carry of the string walk).
    std::string long_string = "{\"pad\": \"";
    while (long_string.size() % 64 != 62) {
        long_string += 'x';
    }
    long_string += "\\\\\\\"";  // run across the boundary
    long_string.append(700, 'y');
    long_string += "\", \"tail\": 1}";
    documents.push_back(long_string);
    // A container spanning well past the lean-walk budget, with structural
    // characters hidden inside strings.
    std::string big = "{\"big\": [";
    for (int i = 0; i < 120; ++i) {
        big += "{\"k" + std::to_string(i) + "\": \"}]},[{\", \"n\": " +
               std::to_string(i) + "},";
    }
    big += "0], \"after\": \"}\"}";
    documents.push_back(big);
    return documents;
}

TEST(SpanExtension, MatchesScalarOracleOnEveryValueEveryTier)
{
    for (const std::string& text : torture_documents()) {
        PaddedString document(text);
        for (simd::Level level : kTiers) {
            SpanExtender extender(document, simd::kernels_for(level));
            for (std::size_t offset : every_value_offset(text)) {
                const ValueSpan expected =
                    project::extend_value_span(document, offset);
                const ValueSpan got = extender.extend(offset);
                EXPECT_EQ(got, expected)
                    << "offset " << offset << " tier "
                    << simd::level_name(level) << " doc: " << text;
                EXPECT_EQ(extender.slice(got), extract_value(document, offset));
            }
        }
    }
}

TEST(SpanExtension, OutOfRangeOffsetYieldsEmptySpan)
{
    PaddedString document(std::string("{\"a\": 1}"));
    SpanExtender extender(document, simd::best_kernels());
    const ValueSpan span = extender.extend(document.size() + 5);
    EXPECT_TRUE(span.empty());
}

TEST(SpanExtension, UnclosedValueClampsToViewEnd)
{
    // Malformed on purpose: extension must clamp, exactly as the oracle.
    for (const std::string& text :
         {std::string("{\"a\": [1, 2"), std::string("{\"a\": \"runaway")}) {
        PaddedString document(text);
        for (simd::Level level : kTiers) {
            SpanExtender extender(document, simd::kernels_for(level));
            const std::size_t offset = text.find_first_of("[\"", 5);
            EXPECT_EQ(extender.extend(offset),
                      project::extend_value_span(document, offset));
        }
    }
}

TEST(SpanExtension, FeedsProjectionCounters)
{
    if constexpr (!obs::kEnabled) {
        GTEST_SKIP() << "obs counters compiled out";
    }
    PaddedString document(std::string("{\"a\": [1, 2], \"b\": \"xy\"}"));
    obs::Counters counters;
    SpanExtender extender(document, simd::best_kernels(), &counters);
    const ValueSpan array_span = extender.extend(6);
    extender.extend(19);  // the "xy" string
    EXPECT_EQ(counters.get(obs::Counter::kProjectedValues), 2u);
    EXPECT_EQ(counters.get(obs::Counter::kProjectedBytes),
              array_span.size() + 4);
}

// ---------------------------------------------------------------------------
// Sinks: engine runs against DOM-oracle extraction, per tier and backend.
// ---------------------------------------------------------------------------

struct SinkCase {
    const char* query;
    const char* document;
};

std::vector<SinkCase> sink_cases()
{
    return {
        {"$..b", "{\"a\": {\"b\": 1, \"c\": {\"b\": [2, {\"x\": 3}]}},"
                 " \"b\": \"four\"}"},
        // Escapes and UTF-8 keys survive byte-verbatim.
        {"$..text", "{\"text\": \"tab\\t\\\"quote\\\" \\u2603\","
                    " \"inner\": {\"text\": \"caf\u00e9\"}}"},
        {"$.*.v", "{\"\u00fc\": {\"v\": {}}, \"\u2603\": {\"v\": \"\"},"
                  " \"c\": {\"v\": []}}"},
        {"$..deep", "{\"deep\": {\"deep\": {\"deep\": [null, true]}}}"},
    };
}

TEST(ProjectionSinks, SlicesMatchDomExtractionEveryTier)
{
    for (const SinkCase& test_case : sink_cases()) {
        const std::string text = test_case.document;
        PaddedString document(text);
        const std::vector<std::size_t> expected_offsets =
            testing::oracle_offsets(test_case.query, text);
        const std::vector<std::string_view> expected =
            extract_values(document, expected_offsets);
        for (simd::Level level : kTiers) {
            EngineOptions options;
            options.simd = level;
            DescendEngine engine(
                automaton::CompiledQuery::compile(test_case.query), options);
            SpanExtender extender(document, simd::kernels_for(level));
            SliceSink slices;
            ProjectingMatchSink sink(extender, slices);
            ASSERT_TRUE(engine.run(document, sink).ok());
            ASSERT_EQ(slices.slices().size(), expected.size())
                << test_case.query;
            for (std::size_t i = 0; i < expected.size(); ++i) {
                EXPECT_EQ(slices.slices()[i], expected[i]);
                EXPECT_EQ(slices.spans()[i].begin, expected_offsets[i]);
            }
        }
    }
}

TEST(ProjectionSinks, FusedBackendsProjectPerQueryMatchingSingleRuns)
{
    const std::string text =
        "{\"items\": [{\"name\": \"a\", \"price\": {\"amount\": 1}},"
        " {\"name\": \"b\\\"q\", \"price\": {\"amount\": 2}}]}";
    PaddedString document(text);
    const std::vector<std::string> queries = {"$..name", "$..amount",
                                              "$.items.*.price"};
    for (multi::FusedBackend backend :
         {multi::FusedBackend::kLanes, multi::FusedBackend::kProduct}) {
        std::unique_ptr<multi::FusedEngine> fused =
            multi::make_fused_engine(queries, {}, backend);
        multi::CollectingMultiSink collected(queries.size());
        ASSERT_TRUE(fused->run(document, collected).ok());
        SpanExtender extender(document, simd::best_kernels());
        for (std::size_t q = 0; q < queries.size(); ++q) {
            const std::vector<std::size_t> expected_offsets =
                testing::oracle_offsets(queries[q], text);
            SliceSink slices;
            project::project_all(extender, collected.offsets(q), slices);
            const std::vector<std::string_view> expected =
                extract_values(document, expected_offsets);
            ASSERT_EQ(slices.slices().size(), expected.size())
                << queries[q] << " via "
                << multi::fused_backend_name(backend);
            for (std::size_t i = 0; i < expected.size(); ++i) {
                EXPECT_EQ(slices.slices()[i], expected[i]);
            }
        }
    }
}

TEST(ProjectionSinks, NdjsonCompactsOutsideStringsOnly)
{
    std::string out;
    project::append_compact_value("{ \"a\" : [ 1 , \"x y\\n z\" ] }", out);
    EXPECT_EQ(out, "{\"a\":[1,\"x y\\n z\"]}");
    out.clear();
    project::append_compact_value("\" spaced \\\" string \"", out);
    EXPECT_EQ(out, "\" spaced \\\" string \"");
    out.clear();
    project::append_compact_value("{\n  \"k\": \"\"\n}", out);
    EXPECT_EQ(out, "{\"k\":\"\"}");
}

TEST(ProjectionSinks, NdjsonEmitsOneLinePerValue)
{
    const std::string text =
        "{\"a\": {\"multi\": [1,\n 2,\n 3]}, \"b\": {\"multi\":"
        " \"line\\nbreak\"}}";
    PaddedString document(text);
    DescendEngine engine = DescendEngine::for_query("$..multi");
    SpanExtender extender(document, simd::best_kernels());
    std::ostringstream out;
    NdjsonSink ndjson(out);
    ProjectingMatchSink sink(extender, ndjson);
    ASSERT_TRUE(engine.run(document, sink).ok());
    EXPECT_EQ(ndjson.lines(), 2u);
    EXPECT_EQ(out.str(), "[1,2,3]\n\"line\\nbreak\"\n");
}

TEST(ProjectionSinks, CountingSinkTotalsMatchSlices)
{
    const std::string text = "{\"a\": [1, 22, 333], \"b\": {\"a\": \"xyz\"}}";
    PaddedString document(text);
    DescendEngine engine = DescendEngine::for_query("$..a");
    SpanExtender extender(document, simd::best_kernels());
    SliceSink slices;
    CountingProjectionSink counting;
    ProjectingMatchSink slice_sink(extender, slices);
    ProjectingMatchSink count_sink(extender, counting);
    ASSERT_TRUE(engine.run(document, slice_sink).ok());
    ASSERT_TRUE(engine.run(document, count_sink).ok());
    EXPECT_EQ(counting.values(), slices.slices().size());
    std::size_t bytes = 0;
    for (std::string_view slice : slices.slices()) {
        bytes += slice.size();
    }
    EXPECT_EQ(counting.bytes(), bytes);
}

// ---------------------------------------------------------------------------
// NDJSON record-boundary contract: extension over record subviews.
// ---------------------------------------------------------------------------

TEST(RecordBoundaries, ExtensionCannotCrossIntoTheNextRecord)
{
    // Each record's matched value reaches the record's last byte; the
    // next record opens with bytes that would keep a leaked scan alive.
    const std::string text =
        "{\"a\": [1, 2]}\n{\"a\": [3, [4]]}\n{\"a\": \"tail\"}\n";
    PaddedString stream_input(text);
    const std::vector<stream::RecordSpan> records =
        stream::split_records(stream_input, simd::best_kernels());
    ASSERT_EQ(records.size(), 3u);
    for (simd::Level level : kTiers) {
        for (const stream::RecordSpan& record : records) {
            const PaddedView view = PaddedView(stream_input)
                                        .subview(record.begin, record.size());
            DescendEngine engine = DescendEngine::for_query("$.a");
            OffsetSink offsets;
            PaddedString copy(std::string(text, record.begin, record.size()));
            ASSERT_TRUE(engine.run(copy, offsets).ok());
            ASSERT_EQ(offsets.offsets().size(), 1u);
            SpanExtender extender(view, simd::kernels_for(level));
            const ValueSpan span = extender.extend(offsets.offsets()[0]);
            // The span ends within the record — never in the next one.
            EXPECT_LE(span.end, record.size());
            EXPECT_EQ(extender.slice(span),
                      extract_value(view, offsets.offsets()[0]));
        }
    }
}

TEST(RecordBoundaries, UnclosedValueClampsAtRecordEndNotStreamEnd)
{
    // The first record's value never closes; the second record would
    // balance it if the scan leaked across the newline.
    const std::string text = "{\"a\": [1, 2\n{\"a\": [3]}]}\n";
    PaddedString stream_input(text);
    const std::size_t record_len = text.find('\n');
    const PaddedView view = PaddedView(stream_input).subview(0, record_len);
    for (simd::Level level : kTiers) {
        SpanExtender extender(view, simd::kernels_for(level));
        const ValueSpan span = extender.extend(6);  // the open '['
        EXPECT_EQ(span.end, record_len);
    }
}

// ---------------------------------------------------------------------------
// LazyValue: the four invariants of lazy_value.h.
// ---------------------------------------------------------------------------

class LazyValueTest : public ::testing::Test {
protected:
    LazyValueTest()
        : text_("{\"user\": {\"name\": \"Ada \\\"L\\\"\", \"ids\": [7, "
                "{\"n\": 42}], \"flag\": true, \"none\": null}, "
                "\"\u00fc\": {\"deep\": {\"x\": 3.5}}}"),
          document_(text_)
    {
    }

    LazyValue root(obs::Counters* counters = nullptr) const
    {
        return LazyValue(document_, ValueSpan{0, text_.size()},
                         simd::best_kernels(), counters);
    }

    std::string text_;
    PaddedString document_;
};

TEST_F(LazyValueTest, RawIsByteIdenticalToTheInputSlice)
{
    EXPECT_EQ(root().raw(), std::string_view(text_));
    LazyValue user = root().field("user");
    ASSERT_TRUE(user.exists());
    EXPECT_EQ(user.raw(), extract_value(document_, user.span().begin));
}

TEST_F(LazyValueTest, NavigationAndLeafConversions)
{
    LazyValue value = root();
    EXPECT_TRUE(value.is_object());
    EXPECT_EQ(value.size(), 2u);

    LazyValue user = value.field("user");
    ASSERT_TRUE(user.exists());
    EXPECT_EQ(user.size(), 4u);
    EXPECT_EQ(user.field("name").as_string(), "Ada \"L\"");
    EXPECT_TRUE(user.field("flag").as_bool());
    EXPECT_TRUE(user.field("none").is_null());

    LazyValue ids = user.field("ids");
    ASSERT_TRUE(ids.is_array());
    EXPECT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids.element(0).as_number(), 7.0);
    EXPECT_EQ(ids.element(1).field("n").as_number(), 42.0);

    // The escaped-key convention is raw bytes between the quotes.
    EXPECT_EQ(value.field("\u00fc").field("deep").field("x").as_number(), 3.5);
}

TEST_F(LazyValueTest, MissingPathsStayAbsentThroughChains)
{
    LazyValue value = root();
    EXPECT_FALSE(value.field("nope").exists());
    EXPECT_FALSE(value.field("nope").field("deeper").element(3).exists());
    EXPECT_FALSE(value.field("user").element(0).exists());  // not an array
    EXPECT_FALSE(value.field("user").field("ids").element(9).exists());
    EXPECT_FALSE(LazyValue().exists());
}

TEST_F(LazyValueTest, TypeIsReadOffTheFirstByte)
{
    LazyValue user = root().field("user");
    EXPECT_EQ(user.type(), json::Type::kObject);
    EXPECT_EQ(user.field("ids").type(), json::Type::kArray);
    EXPECT_EQ(user.field("name").type(), json::Type::kString);
    EXPECT_EQ(user.field("flag").type(), json::Type::kBool);
    EXPECT_EQ(user.field("none").type(), json::Type::kNull);
    EXPECT_EQ(root().field("\u00fc").field("deep").field("x").type(),
              json::Type::kNumber);
}

TEST_F(LazyValueTest, ResolvedNavigationFeedsTheLazyCounter)
{
    if constexpr (!obs::kEnabled) {
        GTEST_SKIP() << "obs counters compiled out";
    }
    obs::Counters counters;
    LazyValue value = root(&counters);
    EXPECT_EQ(counters.get(obs::Counter::kLazyFieldsParsed), 0u);
    LazyValue user = value.field("user");
    EXPECT_EQ(counters.get(obs::Counter::kLazyFieldsParsed), 1u);
    user.field("ids").element(1);
    EXPECT_EQ(counters.get(obs::Counter::kLazyFieldsParsed), 3u);
    // A miss resolves nothing.
    value.field("nope");
    EXPECT_EQ(counters.get(obs::Counter::kLazyFieldsParsed), 3u);
    // Navigation alone never feeds the projection counters.
    EXPECT_EQ(counters.get(obs::Counter::kProjectedValues), 0u);
}

// ---------------------------------------------------------------------------
// Serve: the projected-values body end to end.
// ---------------------------------------------------------------------------

using serve::decode_response;
using serve::Dispatcher;
using serve::FrameLimits;
using serve::QueryCache;
using serve::Request;
using serve::RequestMode;
using serve::Response;
using serve::ServePolicy;
using serve::ServeStatus;

Request values_request(const std::string& query, const std::string& body,
                       RequestMode mode = RequestMode::kSingle)
{
    Request request;
    request.mode = mode;
    request.flags = serve::kWantValues;
    request.query = query;
    request.body = body;
    return request;
}

TEST(ServeValues, ResponseRoundTripsThroughTheWire)
{
    Response response;
    response.flags = serve::kHasValues;
    response.values = {"{\"a\": 1}", "", "\"x\\\"y\""};
    response.match_count = 3;
    const std::vector<std::uint8_t> wire = serve::encode_response(response);

    Response decoded;
    std::size_t consumed = 0;
    ASSERT_TRUE(decode_response(wire.data(), wire.size(), decoded, consumed));
    EXPECT_EQ(consumed, wire.size());
    ASSERT_TRUE(decoded.has_values());
    EXPECT_EQ(decoded.values, response.values);
}

TEST(ServeValues, DecoderAdmissionChecksTheValuesBody)
{
    Response response;
    response.flags = serve::kHasValues;
    response.values = {std::string(256, 'v')};
    const std::vector<std::uint8_t> wire = serve::encode_response(response);

    Response decoded;
    std::size_t consumed = 0;
    FrameLimits tight;
    tight.max_body_bytes = 16;
    EXPECT_FALSE(decode_response(wire.data(), wire.size(), decoded, consumed,
                                 &tight));
    FrameLimits roomy;
    roomy.max_body_bytes = 1 << 20;
    EXPECT_TRUE(decode_response(wire.data(), wire.size(), decoded, consumed,
                                &roomy));
}

TEST(ServeValues, TruncatedOrCorruptValueBodiesAreRejected)
{
    Response response;
    response.flags = serve::kHasValues;
    response.values = {"abcdef"};
    std::vector<std::uint8_t> wire = serve::encode_response(response);
    Response decoded;
    std::size_t consumed = 0;
    // Corrupt the per-value length prefix so it overruns the body.
    wire[serve::kResponseHeaderSize + 8] = 0xff;
    EXPECT_FALSE(
        decode_response(wire.data(), wire.size(), decoded, consumed));
}

class ProjectedDispatchTest : public ::testing::Test {
protected:
    ProjectedDispatchTest() : cache_(16, 2), dispatcher_(ServePolicy{}, cache_)
    {
    }

    Response handle(const Request& request)
    {
        return dispatcher_.handle(request, scratch_);
    }

    QueryCache cache_;
    Dispatcher dispatcher_;
    RunScratch scratch_;
};

TEST_F(ProjectedDispatchTest, SingleModeValuesMatchDirectExtraction)
{
    const std::string doc =
        "{\"a\": {\"b\": [1, 2]}, \"c\": {\"b\": \"two\"}}";
    Response response = handle(values_request("$..b", doc));
    ASSERT_EQ(response.serve_status, ServeStatus::kOk);
    ASSERT_TRUE(response.has_values());
    PaddedString padded(doc);
    const std::vector<std::size_t> offsets =
        testing::oracle_offsets("$..b", doc);
    ASSERT_EQ(response.values.size(), offsets.size());
    for (std::size_t i = 0; i < offsets.size(); ++i) {
        EXPECT_EQ(response.values[i], extract_value(padded, offsets[i]));
    }
    EXPECT_FALSE(response.values_truncated());
}

TEST_F(ProjectedDispatchTest, MultiModeGroupsValuesPerQuery)
{
    const std::string doc = "{\"a\": {\"b\": 1}, \"c\": {\"b\": 2}}";
    Request request = values_request("$.a.b\n$.c.b", doc, RequestMode::kMulti);
    Response response = handle(request);
    ASSERT_EQ(response.serve_status, ServeStatus::kOk);
    ASSERT_TRUE(response.has_values());
    ASSERT_EQ(response.values.size(), 2u);
    EXPECT_EQ(response.values[0], "1");
    EXPECT_EQ(response.values[1], "2");
}

TEST_F(ProjectedDispatchTest, NdjsonModeValuesStayWithinRecords)
{
    const std::string doc = "{\"id\": [1, 2]}\n{\"id\": 3}\n";
    Request request = values_request("$.id", doc, RequestMode::kNdjson);
    Response response = handle(request);
    ASSERT_EQ(response.serve_status, ServeStatus::kOk);
    ASSERT_TRUE(response.has_values());
    ASSERT_EQ(response.values.size(), 2u);
    EXPECT_EQ(response.values[0], "[1, 2]");
    EXPECT_EQ(response.values[1], "3");
}

TEST(ServeValues, PolicyCapTruncatesInDocumentOrder)
{
    QueryCache cache(16, 2);
    ServePolicy policy;
    policy.max_projected_bytes = 8;
    Dispatcher dispatcher(policy, cache);
    RunScratch scratch;
    const std::string doc =
        "{\"a\": \"0123\", \"b\": {\"a\": \"01234567890123456789\"}}";
    Response response =
        dispatcher.handle(values_request("$..a", doc), scratch);
    ASSERT_EQ(response.serve_status, ServeStatus::kOk);
    ASSERT_TRUE(response.has_values());
    EXPECT_TRUE(response.values_truncated());
    // The first value fits the cap; the oversized second one is cut, but
    // match_count still reports both.
    ASSERT_EQ(response.values.size(), 1u);
    EXPECT_EQ(response.values[0], "\"0123\"");
    EXPECT_EQ(response.match_count, 2u);
}

}  // namespace
}  // namespace descend
