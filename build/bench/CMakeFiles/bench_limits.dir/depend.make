# Empty dependencies file for bench_limits.
# This may be replaced when dependencies are built.
