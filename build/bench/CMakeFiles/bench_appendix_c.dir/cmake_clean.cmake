file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_c.dir/bench_appendix_c.cpp.o"
  "CMakeFiles/bench_appendix_c.dir/bench_appendix_c.cpp.o.d"
  "bench_appendix_c"
  "bench_appendix_c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
