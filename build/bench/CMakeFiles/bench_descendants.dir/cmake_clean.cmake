file(REMOVE_RECURSE
  "CMakeFiles/bench_descendants.dir/bench_descendants.cpp.o"
  "CMakeFiles/bench_descendants.dir/bench_descendants.cpp.o.d"
  "bench_descendants"
  "bench_descendants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_descendants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
