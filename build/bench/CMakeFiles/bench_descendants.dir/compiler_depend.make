# Empty compiler generated dependencies file for bench_descendants.
# This may be replaced when dependencies are built.
