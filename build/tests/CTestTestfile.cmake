# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;23;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(simd_test "/root/repo/build/tests/simd_test")
set_tests_properties(simd_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;23;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(classify_test "/root/repo/build/tests/classify_test")
set_tests_properties(classify_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;23;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(json_test "/root/repo/build/tests/json_test")
set_tests_properties(json_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;23;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(query_test "/root/repo/build/tests/query_test")
set_tests_properties(query_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;23;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(automaton_test "/root/repo/build/tests/automaton_test")
set_tests_properties(automaton_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;23;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(engine_test "/root/repo/build/tests/engine_test")
set_tests_properties(engine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;23;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(iterator_test "/root/repo/build/tests/iterator_test")
set_tests_properties(iterator_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;23;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(label_search_test "/root/repo/build/tests/label_search_test")
set_tests_properties(label_search_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;23;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baselines_test "/root/repo/build/tests/baselines_test")
set_tests_properties(baselines_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;23;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(catalog_test "/root/repo/build/tests/catalog_test")
set_tests_properties(catalog_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;23;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(semantics_test "/root/repo/build/tests/semantics_test")
set_tests_properties(semantics_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;23;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;23;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workloads_test "/root/repo/build/tests/workloads_test")
set_tests_properties(workloads_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;23;add_test;/root/repo/tests/CMakeLists.txt;0;")
