# Empty compiler generated dependencies file for label_search_test.
# This may be replaced when dependencies are built.
