file(REMOVE_RECURSE
  "CMakeFiles/label_search_test.dir/label_search_test.cpp.o"
  "CMakeFiles/label_search_test.dir/label_search_test.cpp.o.d"
  "label_search_test"
  "label_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/label_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
