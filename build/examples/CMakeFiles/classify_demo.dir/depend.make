# Empty dependencies file for classify_demo.
# This may be replaced when dependencies are built.
