file(REMOVE_RECURSE
  "CMakeFiles/code_as_data.dir/code_as_data.cpp.o"
  "CMakeFiles/code_as_data.dir/code_as_data.cpp.o.d"
  "code_as_data"
  "code_as_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/code_as_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
