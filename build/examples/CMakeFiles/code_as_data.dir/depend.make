# Empty dependencies file for code_as_data.
# This may be replaced when dependencies are built.
