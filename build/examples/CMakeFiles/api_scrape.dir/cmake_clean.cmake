file(REMOVE_RECURSE
  "CMakeFiles/api_scrape.dir/api_scrape.cpp.o"
  "CMakeFiles/api_scrape.dir/api_scrape.cpp.o.d"
  "api_scrape"
  "api_scrape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_scrape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
