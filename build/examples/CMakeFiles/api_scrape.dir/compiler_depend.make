# Empty compiler generated dependencies file for api_scrape.
# This may be replaced when dependencies are built.
