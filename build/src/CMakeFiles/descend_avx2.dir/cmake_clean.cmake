file(REMOVE_RECURSE
  "CMakeFiles/descend_avx2.dir/descend/simd/kernels_avx2.cpp.o"
  "CMakeFiles/descend_avx2.dir/descend/simd/kernels_avx2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/descend_avx2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
