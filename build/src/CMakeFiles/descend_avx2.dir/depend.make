# Empty dependencies file for descend_avx2.
# This may be replaced when dependencies are built.
