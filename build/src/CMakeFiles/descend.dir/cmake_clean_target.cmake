file(REMOVE_RECURSE
  "libdescend.a"
)
