# Empty dependencies file for descend.
# This may be replaced when dependencies are built.
