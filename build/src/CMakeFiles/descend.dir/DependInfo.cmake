
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/descend/automaton/dfa.cpp" "src/CMakeFiles/descend.dir/descend/automaton/dfa.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/automaton/dfa.cpp.o.d"
  "/root/repo/src/descend/automaton/minimize.cpp" "src/CMakeFiles/descend.dir/descend/automaton/minimize.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/automaton/minimize.cpp.o.d"
  "/root/repo/src/descend/automaton/nfa.cpp" "src/CMakeFiles/descend.dir/descend/automaton/nfa.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/automaton/nfa.cpp.o.d"
  "/root/repo/src/descend/automaton/properties.cpp" "src/CMakeFiles/descend.dir/descend/automaton/properties.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/automaton/properties.cpp.o.d"
  "/root/repo/src/descend/baselines/dom_engine.cpp" "src/CMakeFiles/descend.dir/descend/baselines/dom_engine.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/baselines/dom_engine.cpp.o.d"
  "/root/repo/src/descend/baselines/ski_engine.cpp" "src/CMakeFiles/descend.dir/descend/baselines/ski_engine.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/baselines/ski_engine.cpp.o.d"
  "/root/repo/src/descend/baselines/surfer_engine.cpp" "src/CMakeFiles/descend.dir/descend/baselines/surfer_engine.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/baselines/surfer_engine.cpp.o.d"
  "/root/repo/src/descend/classify/depth_classifier.cpp" "src/CMakeFiles/descend.dir/descend/classify/depth_classifier.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/classify/depth_classifier.cpp.o.d"
  "/root/repo/src/descend/classify/quote_classifier.cpp" "src/CMakeFiles/descend.dir/descend/classify/quote_classifier.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/classify/quote_classifier.cpp.o.d"
  "/root/repo/src/descend/classify/raw_tables.cpp" "src/CMakeFiles/descend.dir/descend/classify/raw_tables.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/classify/raw_tables.cpp.o.d"
  "/root/repo/src/descend/classify/structural_classifier.cpp" "src/CMakeFiles/descend.dir/descend/classify/structural_classifier.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/classify/structural_classifier.cpp.o.d"
  "/root/repo/src/descend/engine/extract.cpp" "src/CMakeFiles/descend.dir/descend/engine/extract.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/engine/extract.cpp.o.d"
  "/root/repo/src/descend/engine/label_search.cpp" "src/CMakeFiles/descend.dir/descend/engine/label_search.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/engine/label_search.cpp.o.d"
  "/root/repo/src/descend/engine/main_engine.cpp" "src/CMakeFiles/descend.dir/descend/engine/main_engine.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/engine/main_engine.cpp.o.d"
  "/root/repo/src/descend/engine/padded_string.cpp" "src/CMakeFiles/descend.dir/descend/engine/padded_string.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/engine/padded_string.cpp.o.d"
  "/root/repo/src/descend/engine/structural_iterator.cpp" "src/CMakeFiles/descend.dir/descend/engine/structural_iterator.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/engine/structural_iterator.cpp.o.d"
  "/root/repo/src/descend/json/dom.cpp" "src/CMakeFiles/descend.dir/descend/json/dom.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/json/dom.cpp.o.d"
  "/root/repo/src/descend/json/parser.cpp" "src/CMakeFiles/descend.dir/descend/json/parser.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/json/parser.cpp.o.d"
  "/root/repo/src/descend/json/sax.cpp" "src/CMakeFiles/descend.dir/descend/json/sax.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/json/sax.cpp.o.d"
  "/root/repo/src/descend/json/serializer.cpp" "src/CMakeFiles/descend.dir/descend/json/serializer.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/json/serializer.cpp.o.d"
  "/root/repo/src/descend/query/parser.cpp" "src/CMakeFiles/descend.dir/descend/query/parser.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/query/parser.cpp.o.d"
  "/root/repo/src/descend/query/query.cpp" "src/CMakeFiles/descend.dir/descend/query/query.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/query/query.cpp.o.d"
  "/root/repo/src/descend/simd/dispatch.cpp" "src/CMakeFiles/descend.dir/descend/simd/dispatch.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/simd/dispatch.cpp.o.d"
  "/root/repo/src/descend/simd/kernels_scalar.cpp" "src/CMakeFiles/descend.dir/descend/simd/kernels_scalar.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/simd/kernels_scalar.cpp.o.d"
  "/root/repo/src/descend/util/errors.cpp" "src/CMakeFiles/descend.dir/descend/util/errors.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/util/errors.cpp.o.d"
  "/root/repo/src/descend/workloads/dataset_ast.cpp" "src/CMakeFiles/descend.dir/descend/workloads/dataset_ast.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/workloads/dataset_ast.cpp.o.d"
  "/root/repo/src/descend/workloads/dataset_bestbuy.cpp" "src/CMakeFiles/descend.dir/descend/workloads/dataset_bestbuy.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/workloads/dataset_bestbuy.cpp.o.d"
  "/root/repo/src/descend/workloads/dataset_crossref.cpp" "src/CMakeFiles/descend.dir/descend/workloads/dataset_crossref.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/workloads/dataset_crossref.cpp.o.d"
  "/root/repo/src/descend/workloads/dataset_googlemap.cpp" "src/CMakeFiles/descend.dir/descend/workloads/dataset_googlemap.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/workloads/dataset_googlemap.cpp.o.d"
  "/root/repo/src/descend/workloads/dataset_nspl.cpp" "src/CMakeFiles/descend.dir/descend/workloads/dataset_nspl.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/workloads/dataset_nspl.cpp.o.d"
  "/root/repo/src/descend/workloads/dataset_openfood.cpp" "src/CMakeFiles/descend.dir/descend/workloads/dataset_openfood.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/workloads/dataset_openfood.cpp.o.d"
  "/root/repo/src/descend/workloads/dataset_twitter.cpp" "src/CMakeFiles/descend.dir/descend/workloads/dataset_twitter.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/workloads/dataset_twitter.cpp.o.d"
  "/root/repo/src/descend/workloads/dataset_walmart.cpp" "src/CMakeFiles/descend.dir/descend/workloads/dataset_walmart.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/workloads/dataset_walmart.cpp.o.d"
  "/root/repo/src/descend/workloads/dataset_wikimedia.cpp" "src/CMakeFiles/descend.dir/descend/workloads/dataset_wikimedia.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/workloads/dataset_wikimedia.cpp.o.d"
  "/root/repo/src/descend/workloads/datasets.cpp" "src/CMakeFiles/descend.dir/descend/workloads/datasets.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/workloads/datasets.cpp.o.d"
  "/root/repo/src/descend/workloads/random_json.cpp" "src/CMakeFiles/descend.dir/descend/workloads/random_json.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/workloads/random_json.cpp.o.d"
  "/root/repo/src/descend/workloads/stats.cpp" "src/CMakeFiles/descend.dir/descend/workloads/stats.cpp.o" "gcc" "src/CMakeFiles/descend.dir/descend/workloads/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
