file(REMOVE_RECURSE
  "CMakeFiles/difftest.dir/difftest.cpp.o"
  "CMakeFiles/difftest.dir/difftest.cpp.o.d"
  "difftest"
  "difftest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difftest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
