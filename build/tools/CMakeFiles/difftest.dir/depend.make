# Empty dependencies file for difftest.
# This may be replaced when dependencies are built.
