file(REMOVE_RECURSE
  "CMakeFiles/descend-cli.dir/descend_cli.cpp.o"
  "CMakeFiles/descend-cli.dir/descend_cli.cpp.o.d"
  "descend-cli"
  "descend-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/descend-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
