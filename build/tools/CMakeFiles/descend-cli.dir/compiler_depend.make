# Empty compiler generated dependencies file for descend-cli.
# This may be replaced when dependencies are built.
