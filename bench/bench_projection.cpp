/**
 * @file
 * Projection overhead: what materializing values costs on top of the
 * engine's native count-only run (src/descend/project).
 *
 *   bench_projection [--mb N] [--repeat N] [--simd=LEVEL]
 *   bench_projection --smoke
 *
 * A hand-rolled harness (not google-benchmark): the quantity of interest
 * is one wall-clock ratio — a full engine pass that *extends and sinks
 * every match* versus the same pass that only counts — best-of-R over
 * multi-megabyte paper datasets, with every projected slice verified
 * byte-identical to the DOM-oracle extraction before timings are trusted.
 *
 * Per (dataset, query) scenario four rows go to BENCH_projection.json
 * (DESCEND_BENCH_JSON overrides) via the shared section-merging writer:
 *
 *   *-baseline   CountSink, no projection — the denominator
 *   *-count      CountingProjectionSink: spans extended, nothing kept
 *   *-slices     SliceSink: zero-copy slices collected (target <15%
 *                overhead vs baseline on the paper workloads)
 *   *-ndjson     NdjsonSink into a discarding stream: compaction cost
 *                included, OS write cost excluded
 *
 * The projected rows carry overhead_pct = (t_mode / t_baseline - 1) * 100
 * plus the projected value/byte totals, so the <15% slice-mode acceptance
 * bound is a field in the artifact, not a claim in prose.
 *
 * --smoke: small documents, full verification — slices element-wise
 * byte-equal to extract_values(), NDJSON lines equal to the oracle's
 * compaction, counting totals consistent. Exits non-zero on any mismatch;
 * wired into CI under asan and on the scalar tier.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <streambuf>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "descend/descend.h"
#include "descend/workloads/datasets.h"

namespace {

using namespace descend;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** One benchmark scenario: a catalog query over one dataset. */
struct ProjSpec {
    const char* name;
    const char* dataset;
    const char* query;
};

/**
 * Scenarios spanning the value shapes that stress different extender
 * paths: short strings (the one-prologue fast path), atom leaves, and
 * container subtrees whose extension walks whole-block masks. Ids are the
 * paper catalog's (bench/catalog.h).
 */
std::vector<ProjSpec> scenarios()
{
    return {
        // C1: descendant query, many small string values.
        {"crossref-doi", "crossref", "$..DOI"},
        // W1r: numeric atom leaves under a rare sub-object.
        {"walmart-price", "walmart", "$..bestMarketplacePrice.price"},
        // B1 minus the leaf: array subtrees, the block-walk path.
        {"bestbuy-catpath", "bestbuy", "$.products.*.categoryPath"},
        // T2: long-ish tweet text strings with escapes.
        {"twitter-text", "twitter", "$.*.text"},
    };
}

/** Discards everything written to it; keeps NdjsonSink's compaction in
 *  the timed region while excluding OS write costs. */
struct NullBuffer final : std::streambuf {
    std::streamsize xsputn(const char*, std::streamsize n) override
    {
        return n;
    }
    int overflow(int c) override { return traits_type::not_eof(c); }
};

/** Best-of-R wall seconds for one full run; @p run must do the work. */
template <typename Run>
double best_of(std::size_t repeats, Run&& run)
{
    double best = 0;
    for (std::size_t r = 0; r < repeats; ++r) {
        Clock::time_point start = Clock::now();
        run();
        double seconds = seconds_since(start);
        if (r == 0 || seconds < best) {
            best = seconds;
        }
    }
    return best;
}

/**
 * Verifies every projection sink against the DOM-free oracle
 * (extract_value's independent scalar scan) on @p document. Returns
 * false (and prints the first divergence) on any mismatch.
 */
bool verify_projection(const DescendEngine& engine,
                       const PaddedString& document, const char* label)
{
    OffsetSink offsets;
    EngineStatus status = engine.run(document, offsets);
    if (!status.ok()) {
        std::fprintf(stderr, "FAIL: %s: engine run: %s\n", label,
                     to_string(status).c_str());
        return false;
    }
    const std::vector<std::string_view> oracle =
        extract_values(document, offsets.offsets());
    const simd::Kernels& kernels = simd::best_kernels();

    // Slices: byte-identical to the oracle, element-wise.
    project::SpanExtender extender(document, kernels);
    project::SliceSink slices;
    project::ProjectingMatchSink projecting(extender, slices);
    status = engine.run(document, projecting);
    if (!status.ok() || slices.slices().size() != oracle.size()) {
        std::fprintf(stderr, "FAIL: %s: slice run produced %zu values, "
                     "oracle %zu\n", label, slices.slices().size(),
                     oracle.size());
        return false;
    }
    for (std::size_t i = 0; i < oracle.size(); ++i) {
        if (slices.slices()[i] != oracle[i]) {
            std::fprintf(stderr,
                         "FAIL: %s: slice %zu != oracle (offset %zu)\n",
                         label, i, offsets.offsets()[i]);
            return false;
        }
    }

    // NDJSON: each line is the oracle slice's compaction.
    std::ostringstream lines_out;
    project::NdjsonSink ndjson(lines_out);
    project::SpanExtender ndjson_extender(document, kernels);
    project::project_all(ndjson_extender, offsets.offsets(), ndjson);
    std::istringstream lines_in(lines_out.str());
    std::string line;
    std::string expected;
    for (std::size_t i = 0; i < oracle.size(); ++i) {
        if (!std::getline(lines_in, line)) {
            std::fprintf(stderr, "FAIL: %s: ndjson ended at line %zu of "
                         "%zu\n", label, i, oracle.size());
            return false;
        }
        expected.clear();
        project::append_compact_value(oracle[i], expected);
        if (line != expected) {
            std::fprintf(stderr, "FAIL: %s: ndjson line %zu diverges from "
                         "the oracle's compaction\n", label, i);
            return false;
        }
    }
    if (ndjson.lines() != oracle.size() || std::getline(lines_in, line)) {
        std::fprintf(stderr, "FAIL: %s: ndjson produced %zu lines, oracle "
                     "%zu values\n", label, ndjson.lines(), oracle.size());
        return false;
    }

    // Counting: totals consistent with the oracle slices.
    std::size_t oracle_bytes = 0;
    for (std::string_view slice : oracle) {
        oracle_bytes += slice.size();
    }
    project::CountingProjectionSink counting;
    project::SpanExtender counting_extender(document, kernels);
    project::project_all(counting_extender, offsets.offsets(), counting);
    if (counting.values() != oracle.size() ||
        counting.bytes() != oracle_bytes) {
        std::fprintf(stderr, "FAIL: %s: counting sink (%zu values, %zu "
                     "bytes) != oracle (%zu, %zu)\n", label,
                     counting.values(), counting.bytes(), oracle.size(),
                     oracle_bytes);
        return false;
    }
    return true;
}

int run_throughput(std::size_t target_bytes, std::size_t repeats)
{
    std::vector<bench::BenchRow> rows;
    const char* tier = simd::level_name(simd::default_level());
    const simd::Kernels& kernels = simd::best_kernels();
    int failures = 0;

    for (const ProjSpec& spec : scenarios()) {
        PaddedString document(workloads::generate(spec.dataset, target_bytes));
        DescendEngine engine = DescendEngine::for_query(spec.query);

        // Correctness before timing: every sink against the oracle on a
        // small slice of the same generator.
        PaddedString probe(
            workloads::generate(spec.dataset, std::size_t{256} << 10));
        if (!verify_projection(engine, probe, spec.name)) {
            ++failures;
            continue;
        }

        // Totals once, outside the timed region.
        project::SpanExtender totals_extender(document, kernels);
        project::CountingProjectionSink totals;
        project::ProjectingMatchSink totals_sink(totals_extender, totals);
        engine.run(document, totals_sink);
        const std::size_t values = totals.values();
        const std::size_t bytes = totals.bytes();

        double base_best = best_of(repeats, [&] {
            CountSink sink;
            engine.run(document, sink);
        });
        double count_best = best_of(repeats, [&] {
            project::SpanExtender extender(document, kernels);
            project::CountingProjectionSink counting;
            project::ProjectingMatchSink sink(extender, counting);
            engine.run(document, sink);
        });
        double slices_best = best_of(repeats, [&] {
            project::SpanExtender extender(document, kernels);
            project::SliceSink collected;
            project::ProjectingMatchSink sink(extender, collected);
            engine.run(document, sink);
        });
        NullBuffer null_buffer;
        std::ostream null_stream(&null_buffer);
        double ndjson_best = best_of(repeats, [&] {
            project::SpanExtender extender(document, kernels);
            project::NdjsonSink ndjson(null_stream);
            project::ProjectingMatchSink sink(extender, ndjson);
            engine.run(document, sink);
        });

        double gib = static_cast<double>(document.size()) /
                     (1024.0 * 1024.0 * 1024.0);
        auto pct = [&](double best) {
            return (best / base_best - 1.0) * 100.0;
        };
        std::printf("%-18s %8zu values %9zu bytes  baseline %8.2f MB/s  "
                    "count %+6.1f%%  slices %+6.1f%%  ndjson %+6.1f%%\n",
                    spec.name, values, bytes, gib * 1024.0 / base_best,
                    pct(count_best), pct(slices_best), pct(ndjson_best));

        struct Mode {
            const char* suffix;
            double best;
        };
        for (const Mode& mode :
             {Mode{"-baseline", base_best}, Mode{"-count", count_best},
              Mode{"-slices", slices_best}, Mode{"-ndjson", ndjson_best}}) {
            bench::BenchRow row;
            row.section = "projection";
            row.name = std::string(spec.name) + mode.suffix;
            row.tier = tier;
            row.gbps = gib / mode.best;
            row.extra.emplace_back("projected_values",
                                   static_cast<double>(values));
            row.extra.emplace_back("projected_bytes",
                                   static_cast<double>(bytes));
            if (std::strcmp(mode.suffix, "-baseline") != 0) {
                row.extra.emplace_back("overhead_pct", pct(mode.best));
            }
            rows.push_back(std::move(row));
        }
    }

    const char* env = std::getenv("DESCEND_BENCH_JSON");
    std::string path =
        env != nullptr && *env != '\0' ? env : "BENCH_projection.json";
    bench::merge_bench_json("projection", rows, path);
    return failures == 0 ? 0 : 1;
}

int run_smoke()
{
    int failures = 0;
    for (const ProjSpec& spec : scenarios()) {
        DescendEngine engine = DescendEngine::for_query(spec.query);
        for (std::size_t kib : {std::size_t{4}, std::size_t{256}}) {
            PaddedString document(
                workloads::generate(spec.dataset, kib << 10));
            bool ok = verify_projection(engine, document, spec.name);
            std::printf("smoke: %-18s %4zu KiB ... %s\n", spec.name, kib,
                        ok ? "ok" : "MISMATCH");
            if (!ok) {
                ++failures;
            }
        }
    }
    if (failures == 0) {
        std::printf("smoke: every projection sink matches the extraction "
                    "oracle on every scenario\n");
    }
    return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv)
{
    descend::bench::apply_simd_flag(argc, argv);
    std::size_t target_mb = 8;
    std::size_t repeats = 5;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--mb" && i + 1 < argc) {
            target_mb = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--repeat" && i + 1 < argc) {
            repeats = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else {
            std::fprintf(stderr,
                         "usage: bench_projection [--mb N] [--repeat N] "
                         "[--simd=LEVEL] | --smoke\n");
            return 2;
        }
    }
    if (smoke) {
        return run_smoke();
    }
    const char* env_mb = std::getenv("DESCEND_BENCH_MB");
    if (env_mb != nullptr && *env_mb != '\0') {
        target_mb = static_cast<std::size_t>(
            std::strtoull(env_mb, nullptr, 10));
    }
    return run_throughput(target_mb << 20, repeats == 0 ? 1 : repeats);
}
