/**
 * @file
 * Experiment A (paper Section 5.4, Table 4 / Figure 4): the overhead of
 * supporting descendants and idiomatic wildcards, measured on
 * descendant-free queries.
 *
 * Engines: descend (this work, stands in for rsonpath), the JSONSki-like
 * baseline (SIMD fast-forwarding, array-only wildcard), and the
 * jsurfer-like baseline (scalar streaming). Expected shape: descend at or
 * above jsonski (the paper reports a 10-20% boost), jsurfer an order of
 * magnitude below both; B3 far slower than B2 for the SIMD engines.
 */
#include "bench/harness.h"

int main(int argc, char** argv)
{
    descend::bench::register_ids({"B1", "B2", "B3", "G1", "G2", "N1", "N2", "T1",
                                  "T2", "W1", "W2", "Wi"});
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
