/**
 * @file
 * Record-stream throughput: SIMD NDJSON splitting + parallel sharded
 * execution (src/descend/stream). Not part of the google-benchmark suite —
 * a hand-rolled harness, because the quantity of interest is the *scaling*
 * of one big run (GB/s and records/s at 1..N threads over a multi-hundred-
 * megabyte stream), not statistics over many small iterations.
 *
 *   bench_stream [--mb N] [--threads N] [--query Q] [--record-kb N]
 *   bench_stream --smoke
 *
 * The stream is built by concatenating compact single-line documents from
 * every workload generator round-robin until the target size. Default
 * 256 MB — the acceptance scale for the >= 2.5x speedup criterion at 4+
 * threads (a 1-core container can only show ~1x; the harness prints the
 * core count so such runs are self-explaining). Every thread count must
 * produce the identical match count; the harness verifies this and fails
 * otherwise.
 *
 * --smoke: small input, full verification — matches at every thread count
 * and under both error policies are compared element-wise against a
 * sequential oracle that copies each record into its own PaddedString.
 * Exits non-zero on any mismatch; wired into CI under asan/tsan.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "descend/descend.h"
#include "descend/workloads/datasets.h"

namespace {

using namespace descend;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Round-robins generator output into an NDJSON stream of ~target bytes. */
PaddedString build_stream(std::size_t target_bytes, std::size_t record_bytes)
{
    std::vector<std::string> names = workloads::dataset_names();
    // Each generator call emits one compact document == one record. Cache a
    // handful per dataset and cycle them: generation is the expensive part,
    // not concatenation.
    std::vector<std::string> pool;
    for (const std::string& name : names) {
        for (std::size_t variant = 1; variant <= 3; ++variant) {
            pool.push_back(
                workloads::generate(name, record_bytes / 2 * (variant + 1)));
        }
    }
    std::string stream;
    stream.reserve(target_bytes + record_bytes);
    std::size_t next = 0;
    while (stream.size() < target_bytes) {
        stream += pool[next];
        stream += '\n';
        next = (next + 1) % pool.size();
    }
    return PaddedString(std::move(stream));
}

struct Measurement {
    double seconds = 0;
    std::size_t matches = 0;
    std::size_t records = 0;
    std::size_t failed = 0;
};

Measurement measure(const stream::StreamExecutor& executor, PaddedView input,
                    const std::vector<stream::RecordSpan>& records)
{
    stream::CountingStreamSink sink;
    Clock::time_point start = Clock::now();
    stream::StreamResult result = executor.run_records(input, records, sink);
    Measurement m;
    m.seconds = seconds_since(start);
    m.matches = result.matches;
    m.records = result.records;
    m.failed = result.failed_records;
    return m;
}

int run_throughput(std::size_t target_bytes, std::size_t max_threads,
                   std::size_t record_bytes, const std::string& query)
{
    std::size_t cores = std::thread::hardware_concurrency();
    if (max_threads == 0) {
        max_threads = cores != 0 ? cores : 1;
    }
    std::printf("building ~%zu MB NDJSON stream (...this takes a while)\n",
                target_bytes >> 20);
    PaddedString input = build_stream(target_bytes, record_bytes);
    const simd::Kernels& kernels = simd::best_kernels();

    Clock::time_point split_start = Clock::now();
    std::vector<stream::RecordSpan> records =
        stream::split_records(input, kernels);
    double split_seconds = seconds_since(split_start);
    double gib = static_cast<double>(input.size()) / (1024.0 * 1024.0 * 1024.0);
    std::printf("stream: %.2f GiB, %zu records, query %s, %zu cores\n", gib,
                records.size(), query.c_str(), cores);
    std::printf("split:  %.3f s (%.2f GB/s)\n", split_seconds,
                gib / split_seconds);

    std::printf("%8s %10s %12s %14s %9s\n", "threads", "seconds", "GB/s",
                "records/s", "speedup");
    double base_seconds = 0;
    std::size_t base_matches = 0;
    for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
        stream::StreamOptions options;
        options.threads = threads;
        stream::StreamExecutor executor(
            automaton::CompiledQuery::compile(query), options);
        Measurement m = measure(executor, input, records);
        if (threads == 1) {
            base_seconds = m.seconds;
            base_matches = m.matches;
        } else if (m.matches != base_matches) {
            std::fprintf(stderr,
                         "FAIL: %zu threads found %zu matches, 1 thread %zu\n",
                         threads, m.matches, base_matches);
            return 1;
        }
        std::printf("%8zu %10.3f %12.2f %14.0f %8.2fx\n", threads, m.seconds,
                    gib / m.seconds,
                    static_cast<double>(m.records) / m.seconds,
                    base_seconds / m.seconds);
    }
    std::printf("matches: %zu (identical across thread counts)\n",
                base_matches);
    return 0;
}

/** Sequential oracle: each record copied into its own PaddedString. */
std::vector<stream::CollectingStreamSink::Match> oracle_matches(
    const DescendEngine& engine, PaddedView input,
    const std::vector<stream::RecordSpan>& records)
{
    std::vector<stream::CollectingStreamSink::Match> matches;
    for (std::size_t r = 0; r < records.size(); ++r) {
        const stream::RecordSpan& span = records[r];
        PaddedString copy(std::string_view(
            reinterpret_cast<const char*>(input.data()) + span.begin,
            span.size()));
        OffsetsResult result = engine.offsets_checked(copy);
        if (!result.ok()) {
            continue;  // skip-policy oracle: failed records contribute nothing
        }
        for (std::size_t offset : result.offsets) {
            matches.push_back({r, offset});
        }
    }
    return matches;
}

int run_smoke()
{
    const char* query = "$..id";
    PaddedString input = build_stream(std::size_t{4} << 20, std::size_t{8} << 10);
    const simd::Kernels& kernels = simd::best_kernels();
    std::vector<stream::RecordSpan> records =
        stream::split_records(input, kernels);

    DescendEngine oracle_engine =
        DescendEngine::for_query(query);
    std::vector<stream::CollectingStreamSink::Match> expected =
        oracle_matches(oracle_engine, input, records);

    int failures = 0;
    for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                std::size_t{8}}) {
        for (stream::ErrorPolicy policy : {stream::ErrorPolicy::kSkipRecord,
                                           stream::ErrorPolicy::kFailFast}) {
            stream::StreamOptions options;
            options.threads = threads;
            options.policy = policy;
            stream::StreamExecutor executor(
                automaton::CompiledQuery::compile(query), options);
            stream::CollectingStreamSink sink;
            stream::StreamResult result =
                executor.run_records(input, records, sink);
            bool ok = result.ok() && sink.matches() == expected &&
                      result.matches == expected.size();
            std::printf("smoke: threads=%zu policy=%s: %zu records, "
                        "%zu matches ... %s\n",
                        threads,
                        policy == stream::ErrorPolicy::kFailFast ? "fail-fast"
                                                                 : "skip",
                        result.records, result.matches, ok ? "ok" : "MISMATCH");
            if (!ok) {
                ++failures;
            }
        }
    }
    if (failures == 0) {
        std::printf("smoke: all configurations match the sequential oracle "
                    "(%zu matches over %zu records)\n",
                    expected.size(), records.size());
    }
    return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv)
{
    descend::bench::apply_simd_flag(argc, argv);
    std::size_t target_mb = 256;
    std::size_t max_threads = 0;
    std::size_t record_kb = 64;
    std::string query = "$..id";
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--mb" && i + 1 < argc) {
            target_mb = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--threads" && i + 1 < argc) {
            max_threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--record-kb" && i + 1 < argc) {
            record_kb = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--query" && i + 1 < argc) {
            query = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: bench_stream [--mb N] [--threads N] "
                         "[--record-kb N] [--query Q] [--simd=LEVEL] "
                         "| --smoke\n");
            return 2;
        }
    }
    if (smoke) {
        return run_smoke();
    }
    return run_throughput(target_mb << 20, max_threads, record_kb << 10, query);
}
