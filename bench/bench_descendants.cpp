/**
 * @file
 * Experiment B (paper Section 5.5, Table 5 / Figure 5): the benefit of
 * rewriting descendant-free queries with descendants. Each pair runs the
 * original (descend + jsonski + jsurfer) and the rewriting (descend +
 * jsurfer; JSONSki cannot express descendants).
 *
 * Expected shape: rewritings dominate their originals — dramatically where
 * the leading label is selective (B2r, B3r, G2r, Wir, W1r) and modestly
 * where match counts are huge (B1r, W2r); jsurfer is indifferent to the
 * rewriting.
 */
#include "bench/harness.h"

int main(int argc, char** argv)
{
    descend::bench::register_ids({"B1", "B1r", "B2", "B2r", "B3", "B3r", "G2",
                                  "G2r", "W1", "W1r", "W2", "W2r", "Wi", "Wir"});
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
