/**
 * @file
 * Machine-readable benchmark output: BENCH_pipeline.json.
 *
 * Several bench binaries contribute rows (GB/s per stage, per kernel
 * tier) to one flat JSON file so CI and plotting scripts never have to
 * scrape console tables. Each binary owns one or more *sections*; writing
 * a section replaces its previous rows and leaves every other section
 * untouched, so the file accumulates across binaries:
 *
 *   { "entries": [
 *       {"section": "pipeline", "name": "batched", "tier": "avx2",
 *        "gbps": 12.34},
 *       ... ] }
 *
 * Also home of the shared --simd= flag handling for bench harnesses: the
 * flag is exported as DESCEND_SIMD_LEVEL (the dispatcher's tier cap) so a
 * single mechanism serves flags, env overrides, and child processes alike.
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "descend/json/dom.h"
#include "descend/simd/dispatch.h"
#include "descend/util/errors.h"

namespace descend::bench {

/**
 * One measurement destined for BENCH_pipeline.json.
 *
 * `extra` carries optional numeric context beside the headline throughput
 * — typically observability counters (blocks skipped per technique, label
 * search hit rates; see obs/counters.h) captured from the measured run so
 * a BENCH row explains *why* it is fast, not just how fast. Keys are
 * emitted as a nested "extra" object and survive section merging; an
 * empty map emits no "extra" key at all, keeping legacy rows byte-stable.
 */
struct BenchRow {
    std::string section;
    std::string name;
    std::string tier;
    double gbps = 0;
    std::vector<std::pair<std::string, double>> extra;
};

/** Output path; override with DESCEND_BENCH_JSON. */
inline std::string bench_json_path()
{
    const char* env = std::getenv("DESCEND_BENCH_JSON");
    return env != nullptr && *env != '\0' ? env : "BENCH_pipeline.json";
}

/** Prints the tier the dispatcher actually selected, once per process. */
inline void announce_simd_level()
{
    static const bool printed = [] {
        std::fprintf(stderr, "[harness] active SIMD level: %s\n",
                     simd::level_name(simd::default_level()));
        return true;
    }();
    (void)printed;
}

/**
 * Consumes a `--simd=LEVEL` argument (if present) by exporting it as
 * DESCEND_SIMD_LEVEL, then prints the tier the dispatcher actually
 * selected. Call at the very top of main, before anything fetches
 * kernels: the dispatcher reads the env var once. Exits on a bad level.
 */
inline void apply_simd_flag(int& argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--simd=", 7) != 0) {
            continue;
        }
        const char* value = argv[i] + 7;
        simd::Level level;
        if (!simd::parse_level(value, level)) {
            std::fprintf(stderr, "unknown SIMD level '%s' (scalar|avx2|avx512)\n",
                         value);
            std::exit(2);
        }
        setenv("DESCEND_SIMD_LEVEL", value, 1);
        for (int j = i; j + 1 < argc; ++j) {
            argv[j] = argv[j + 1];
        }
        --argc;
        --i;
    }
    announce_simd_level();
}

namespace detail {

inline void append_json_string(std::string& out, const std::string& text)
{
    out += '"';
    out += json::escape(text);
    out += '"';
}

}  // namespace detail

/**
 * Rewrites @p section of the bench JSON file with @p rows, preserving all
 * other sections. An unreadable or malformed existing file is treated as
 * empty (benchmarks must never die on a stale artifact).
 */
inline void merge_bench_json(const std::string& section,
                             const std::vector<BenchRow>& rows,
                             const std::string& path = bench_json_path())
{
    std::vector<BenchRow> all;
    std::ifstream in(path);
    if (in) {
        std::ostringstream buffer;
        buffer << in.rdbuf();
        try {
            json::Document doc = json::parse(buffer.str());
            const json::Value* entries = doc.root().find("entries");
            if (entries != nullptr && entries->is_array()) {
                for (const json::Value* entry : entries->elements()) {
                    if (!entry->is_object()) {
                        continue;
                    }
                    const json::Value* entry_section = entry->find("section");
                    const json::Value* name = entry->find("name");
                    const json::Value* tier = entry->find("tier");
                    const json::Value* gbps = entry->find("gbps");
                    if (entry_section == nullptr || !entry_section->is_string() ||
                        entry_section->as_string() == section) {
                        continue;  // dropped: being rewritten (or junk)
                    }
                    BenchRow row;
                    row.section = entry_section->as_string();
                    row.name = name != nullptr && name->is_string()
                                   ? name->as_string()
                                   : "";
                    row.tier = tier != nullptr && tier->is_string()
                                   ? tier->as_string()
                                   : "";
                    row.gbps = gbps != nullptr && gbps->is_number()
                                   ? gbps->as_number()
                                   : 0.0;
                    const json::Value* extra = entry->find("extra");
                    if (extra != nullptr && extra->is_object()) {
                        for (const auto& [key, value] : extra->members()) {
                            if (value->is_number()) {
                                row.extra.emplace_back(key, value->as_number());
                            }
                        }
                    }
                    all.push_back(std::move(row));
                }
            }
        } catch (const Error&) {
            // Malformed artifact: start fresh.
        }
    }
    all.insert(all.end(), rows.begin(), rows.end());

    // The DOM is read-only, so serialize by hand (flat, stable layout).
    std::string out = "{\n  \"entries\": [";
    for (std::size_t i = 0; i < all.size(); ++i) {
        char gbps[64];
        std::snprintf(gbps, sizeof(gbps), "%.4f", all[i].gbps);
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"section\": ";
        detail::append_json_string(out, all[i].section);
        out += ", \"name\": ";
        detail::append_json_string(out, all[i].name);
        out += ", \"tier\": ";
        detail::append_json_string(out, all[i].tier);
        out += ", \"gbps\": ";
        out += gbps;
        if (!all[i].extra.empty()) {
            out += ", \"extra\": {";
            for (std::size_t j = 0; j < all[i].extra.size(); ++j) {
                char value[64];
                std::snprintf(value, sizeof(value), "%.4f",
                              all[i].extra[j].second);
                out += j == 0 ? "" : ", ";
                detail::append_json_string(out, all[i].extra[j].first);
                out += ": ";
                out += value;
            }
            out += "}";
        }
        out += "}";
    }
    out += "\n  ]\n}\n";

    std::ofstream file(path, std::ios::trunc);
    file << out;
    std::fprintf(stderr, "[harness] wrote section '%s' (%zu rows) to %s\n",
                 section.c_str(), rows.size(), path.c_str());
}

}  // namespace descend::bench
