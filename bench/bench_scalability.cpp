/**
 * @file
 * Experiment D (paper Section 5.7, Table 7): scalability. The query
 * $..affiliation..name runs over Crossref fragments of growing size
 * (S0..S4 in Appendix C); streaming throughput must stay flat.
 */
#include "bench/harness.h"

namespace {

void register_scale(const char* id, double scale)
{
    benchmark::RegisterBenchmark(
        (std::string(id) + "/descend").c_str(), [scale](benchmark::State& state) {
            using namespace descend;
            const PaddedString& doc = bench::dataset("crossref", scale);
            std::size_t expected =
                bench::verified_count("crossref", "$..affiliation..name", scale);
            DescendEngine engine = DescendEngine::for_query("$..affiliation..name");
            bench::run_engine_benchmark(state, engine, doc, expected);
            state.counters["MB"] = static_cast<double>(doc.size()) / 1e6;
        });
}

}  // namespace

int main(int argc, char** argv)
{
    register_scale("S0", 0.25);
    register_scale("S1", 0.5);
    register_scale("S2", 1.0);
    register_scale("S4", 2.0);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
