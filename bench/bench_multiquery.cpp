/**
 * @file
 * Fused multi-query throughput: one classification pass serving N automata
 * (src/descend/multi) against the sequential baseline of N independent
 * DescendEngine runs over the same document.
 *
 *   bench_multiquery [--mb N] [--repeat N] [--simd=LEVEL]
 *   bench_multiquery --smoke
 *
 * A hand-rolled harness (not google-benchmark): the quantity of interest
 * is the wall time to answer a whole query SET, best-of-R over a
 * multi-megabyte document, with the fused and the sequential run verified
 * to produce identical per-query match sets before anything is timed.
 *
 * Results go to BENCH_multiquery.json (DESCEND_BENCH_JSON overrides) via
 * the shared section-merging writer: per query set one "sequential" and
 * one "fused" row, where gbps = document bytes / wall seconds for the
 * whole set, and the fused row's extra carries the speedup (sequential
 * seconds / fused seconds) plus the suppressed-skip counters that explain
 * the consensus cost.
 *
 * --smoke: small documents, full verification — fused match sets (single
 * document AND the NDJSON multi-stream executor at several thread counts)
 * compared element-wise against N independent runs. Exits non-zero on any
 * mismatch; wired into CI under asan.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "descend/descend.h"
#include "descend/multi/multi_stream.h"
#include "descend/workloads/datasets.h"

namespace {

using namespace descend;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** One benchmark scenario: a query set over one dataset. */
struct SetSpec {
    const char* name;
    const char* dataset;
    std::vector<std::string> queries;
};

/**
 * Sets chosen so that the sequential baseline cannot hide behind the
 * memmem head-skip (child-first queries classify every block, so N runs
 * pay N classification passes — exactly the redundancy fusion removes).
 * The mixed set adds descendant queries whose skip disagreement exercises
 * the consensus fallback (fused_*_skip_suppressed > 0) while the set as a
 * whole still amortizes classification.
 */
std::vector<SetSpec> scenarios()
{
    return {
        // Catalog C2, C3, C4, C5 (Experiment C child forms).
        {"crossref-child",
         "crossref",
         {"$.items.*.author.*.affiliation.*.name",
          "$.items.*.editor.*.affiliation.*.name", "$.items.*.title",
          "$.items.*.author.*.ORCID"}},
        // Catalog B1, B2, B3 plus a fourth selective member.
        {"bestbuy-child",
         "bestbuy",
         {"$.products.*.categoryPath.*.id",
          "$.products.*.videoChapters.*.chapter", "$.products.*.videoChapters",
          "$.products.*.sku"}},
        // Catalog W1, W2 plus two selective members.
        {"walmart-child",
         "walmart",
         {"$.items.*.bestMarketplacePrice.price", "$.items.*.name",
          "$.items.*.salePrice", "$.items.*.categoryPath"}},
        // Descendant (C1, C2r, C4r, C5r) + child (C4, C5) mix: the
        // skippability-disagreeing case — child lanes want subtree skips
        // the descendant lanes veto.
        {"crossref-mixed",
         "crossref",
         {"$..DOI", "$..author..affiliation..name", "$..title",
          "$..author..ORCID", "$.items.*.title",
          "$.items.*.author.*.ORCID"}},
    };
}

/** Per-query offsets from N independent engine runs (the baseline). */
std::vector<std::vector<std::size_t>> sequential_offsets(
    const std::vector<DescendEngine>& engines, const PaddedString& document)
{
    std::vector<std::vector<std::size_t>> all;
    for (const DescendEngine& engine : engines) {
        OffsetSink sink;
        EngineStatus status = engine.run(document, sink);
        if (!status.ok()) {
            std::fprintf(stderr, "FAIL: sequential run: %s\n",
                         to_string(status).c_str());
            std::exit(1);
        }
        all.push_back(sink.offsets());
    }
    return all;
}

int run_throughput(std::size_t target_bytes, std::size_t repeats)
{
    std::vector<bench::BenchRow> rows;
    const char* tier = simd::level_name(simd::default_level());
    int failures = 0;
    for (const SetSpec& spec : scenarios()) {
        PaddedString document(workloads::generate(spec.dataset, target_bytes));
        const std::vector<std::string>& texts = spec.queries;
        const std::size_t n = texts.size();

        std::vector<DescendEngine> engines;
        for (const std::string& text : texts) {
            engines.push_back(DescendEngine::for_query(text));
        }
        multi::MultiDescendEngine fused =
            multi::MultiDescendEngine::for_queries(texts);

        // Correctness first: the fused match sets must be bit-identical to
        // the N independent runs before a single timing is trusted.
        std::vector<std::vector<std::size_t>> expected =
            sequential_offsets(engines, document);
        multi::CollectingMultiSink collected(n);
        EngineStatus fused_status = fused.run(document, collected);
        if (!fused_status.ok() || collected.all() != expected) {
            std::fprintf(stderr, "FAIL: %s: fused offsets != sequential\n",
                         spec.name);
            ++failures;
            continue;
        }

        double seq_best = 0;
        double fused_best = 0;
        std::size_t matches = 0;
        for (std::size_t r = 0; r < repeats; ++r) {
            Clock::time_point start = Clock::now();
            std::size_t seq_matches = 0;
            for (const DescendEngine& engine : engines) {
                CountSink sink;
                engine.run(document, sink);
                seq_matches += sink.count();
            }
            double seq_seconds = seconds_since(start);

            multi::CountingMultiSink counting(n);
            start = Clock::now();
            fused.run(document, counting);
            double fused_seconds = seconds_since(start);

            matches = seq_matches;
            if (r == 0 || seq_seconds < seq_best) {
                seq_best = seq_seconds;
            }
            if (r == 0 || fused_seconds < fused_best) {
                fused_best = fused_seconds;
            }
        }

        double gib = static_cast<double>(document.size()) /
                     (1024.0 * 1024.0 * 1024.0);
        double speedup = seq_best / fused_best;
        std::printf("%-20s %zu queries  %7zu matches  seq %8.2f MB/s  "
                    "fused %8.2f MB/s  speedup %.2fx\n",
                    spec.name, n, matches, gib * 1024.0 / seq_best,
                    gib * 1024.0 / fused_best, speedup);

        bench::BenchRow seq_row;
        seq_row.section = "multiquery";
        seq_row.name = std::string(spec.name) + "-sequential";
        seq_row.tier = tier;
        seq_row.gbps = gib / seq_best;
        seq_row.extra.emplace_back("queries", static_cast<double>(n));
        seq_row.extra.emplace_back("matches", static_cast<double>(matches));
        rows.push_back(std::move(seq_row));

        multi::CountingMultiSink counting(n);
        RunStats stats = fused.run_with_stats(document, counting);
        bench::BenchRow fused_row;
        fused_row.section = "multiquery";
        fused_row.name = std::string(spec.name) + "-fused";
        fused_row.tier = tier;
        fused_row.gbps = gib / fused_best;
        fused_row.extra.emplace_back("queries", static_cast<double>(n));
        fused_row.extra.emplace_back("speedup", speedup);
        fused_row.extra.emplace_back("matches", static_cast<double>(matches));
        if constexpr (obs::kEnabled) {
            fused_row.extra.emplace_back(
                "child_skip_suppressed",
                static_cast<double>(stats.counters.get(
                    obs::Counter::kFusedChildSkipSuppressed)));
            fused_row.extra.emplace_back(
                "sibling_skip_suppressed",
                static_cast<double>(stats.counters.get(
                    obs::Counter::kFusedSiblingSkipSuppressed)));
            fused_row.extra.emplace_back(
                "within_skip_suppressed",
                static_cast<double>(stats.counters.get(
                    obs::Counter::kFusedWithinSkipSuppressed)));
        }
        rows.push_back(std::move(fused_row));
    }

    const char* env = std::getenv("DESCEND_BENCH_JSON");
    std::string path =
        env != nullptr && *env != '\0' ? env : "BENCH_multiquery.json";
    bench::merge_bench_json("multiquery", rows, path);
    return failures == 0 ? 0 : 1;
}

/** Builds a small NDJSON stream out of compact dataset records. */
PaddedString build_stream(const char* dataset, std::size_t records,
                          std::size_t record_bytes)
{
    std::string stream;
    for (std::size_t i = 0; i < 3; ++i) {
        // A handful of generator variants cycled; generation dominates.
        std::string doc =
            workloads::generate(dataset, record_bytes / 2 * (i + 2));
        for (std::size_t r = 0; r * 3 < records; ++r) {
            stream += doc;
            stream += '\n';
        }
    }
    return PaddedString(std::move(stream));
}

int run_smoke()
{
    int failures = 0;
    for (const SetSpec& spec : scenarios()) {
        const std::vector<std::string>& texts = spec.queries;
        const std::size_t n = texts.size();
        std::vector<DescendEngine> engines;
        for (const std::string& text : texts) {
            engines.push_back(DescendEngine::for_query(text));
        }

        // Single document: fused == N independent runs, element-wise.
        PaddedString document(
            workloads::generate(spec.dataset, std::size_t{256} << 10));
        std::vector<std::vector<std::size_t>> expected =
            sequential_offsets(engines, document);
        multi::MultiDescendEngine fused =
            multi::MultiDescendEngine::for_queries(texts);
        multi::CollectingMultiSink collected(n);
        EngineStatus status = fused.run(document, collected);
        bool ok = status.ok() && collected.all() == expected;
        std::printf("smoke: %-20s single-doc ... %s\n", spec.name,
                    ok ? "ok" : "MISMATCH");
        if (!ok) {
            ++failures;
        }

        // NDJSON: the multi-stream executor against a per-record oracle of
        // independent runs over copied records, at several thread counts.
        PaddedString stream_input =
            build_stream(spec.dataset, 48, std::size_t{32} << 10);
        const simd::Kernels& kernels = simd::best_kernels();
        std::vector<stream::RecordSpan> records =
            stream::split_records(stream_input, kernels);
        std::vector<multi::CollectingMultiStreamSink::Match> oracle;
        for (std::size_t r = 0; r < records.size(); ++r) {
            const stream::RecordSpan& span = records[r];
            PaddedString copy(std::string_view(
                reinterpret_cast<const char*>(stream_input.data()) + span.begin,
                span.size()));
            for (std::size_t q = 0; q < n; ++q) {
                OffsetSink sink;
                if (!engines[q].run(copy, sink).ok()) {
                    continue;
                }
                for (std::size_t offset : sink.offsets()) {
                    oracle.push_back({q, r, offset});
                }
            }
        }
        // The oracle iterates queries-within-record but emits per (r, q);
        // the executor replays records ascending, queries ascending — the
        // same order, so element-wise comparison is exact.
        for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
            stream::StreamOptions options;
            options.threads = threads;
            multi::MultiStreamExecutor executor(
                multi::MultiQuery::compile(texts), options);
            multi::CollectingMultiStreamSink sink;
            stream::StreamResult result =
                executor.run_records(stream_input, records, sink);
            bool stream_ok = result.ok() && sink.matches() == oracle;
            std::printf("smoke: %-20s ndjson threads=%zu: %zu records, "
                        "%zu matches ... %s\n",
                        spec.name, threads, result.records, result.matches,
                        stream_ok ? "ok" : "MISMATCH");
            if (!stream_ok) {
                ++failures;
            }
        }
    }
    if (failures == 0) {
        std::printf("smoke: fused execution matches independent runs for "
                    "every scenario\n");
    }
    return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv)
{
    descend::bench::apply_simd_flag(argc, argv);
    std::size_t target_mb = 8;
    std::size_t repeats = 5;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--mb" && i + 1 < argc) {
            target_mb = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--repeat" && i + 1 < argc) {
            repeats = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else {
            std::fprintf(stderr,
                         "usage: bench_multiquery [--mb N] [--repeat N] "
                         "[--simd=LEVEL] | --smoke\n");
            return 2;
        }
    }
    if (smoke) {
        return run_smoke();
    }
    const char* env_mb = std::getenv("DESCEND_BENCH_MB");
    if (env_mb != nullptr && *env_mb != '\0') {
        target_mb = static_cast<std::size_t>(
            std::strtoull(env_mb, nullptr, 10));
    }
    return run_throughput(target_mb << 20, repeats == 0 ? 1 : repeats);
}
