/**
 * @file
 * Fused multi-query throughput: one classification pass serving N queries
 * (src/descend/multi) against the sequential baseline of N independent
 * DescendEngine runs over the same document.
 *
 *   bench_multiquery [--mb N] [--repeat N] [--simd=LEVEL]
 *   bench_multiquery --scale [--mb N] [--repeat N] [--simd=LEVEL]
 *   bench_multiquery --smoke [--fused=MODE]
 *
 * A hand-rolled harness (not google-benchmark): the quantity of interest
 * is the wall time to answer a whole query SET, best-of-R over a
 * multi-megabyte document, with every timed engine verified to produce
 * identical per-query match sets before anything is trusted.
 *
 * Default mode compares sequential / lanes / product on the paper's
 * dataset scenarios (4-6 queries each); results go to
 * BENCH_multiquery.json (DESCEND_BENCH_JSON overrides) via the shared
 * section-merging writer, the fused rows carrying speedup = sequential
 * seconds / backend seconds.
 *
 * --scale: the subscription-count sweep behind the product automaton —
 * N in {4, 64, 256, 1024} queries, one shared-prefix-heavy mix (every
 * query descends the same object spine, so the product trie collapses
 * the common prefix to one state path) and one disjoint mix (unrelated
 * descendant labels), over an NDJSON firehose. Rows go to
 * BENCH_multiquery_scale.json: per (mix, N) one "lanes", one "product"
 * and one "sequential" row, gbps = stream bytes / wall seconds for the
 * whole set, the product rows carrying product_states and the
 * speedup_vs_lanes ratio.
 *
 * --smoke: small documents, full verification — for BOTH backends
 * (restrictable with --fused=lanes|product), single-document match sets
 * AND the NDJSON multi-stream executor at several thread counts compared
 * element-wise against N independent runs. Exits non-zero on any
 * mismatch; wired into CI under asan and on the scalar tier.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "descend/descend.h"
#include "descend/multi/fused.h"
#include "descend/multi/multi_engine.h"
#include "descend/multi/multi_stream.h"
#include "descend/multi/product_engine.h"
#include "descend/workloads/datasets.h"

namespace {

using namespace descend;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** One benchmark scenario: a query set over one dataset. */
struct SetSpec {
    const char* name;
    const char* dataset;
    std::vector<std::string> queries;
};

/**
 * Sets chosen so that the sequential baseline cannot hide behind the
 * memmem head-skip (child-first queries classify every block, so N runs
 * pay N classification passes — exactly the redundancy fusion removes).
 * The mixed set adds descendant queries whose skip disagreement exercises
 * the lanes backend's consensus fallback while the set as a whole still
 * amortizes classification.
 */
std::vector<SetSpec> scenarios()
{
    return {
        // Catalog C2, C3, C4, C5 (Experiment C child forms).
        {"crossref-child",
         "crossref",
         {"$.items.*.author.*.affiliation.*.name",
          "$.items.*.editor.*.affiliation.*.name", "$.items.*.title",
          "$.items.*.author.*.ORCID"}},
        // Catalog B1, B2, B3 plus a fourth selective member.
        {"bestbuy-child",
         "bestbuy",
         {"$.products.*.categoryPath.*.id",
          "$.products.*.videoChapters.*.chapter", "$.products.*.videoChapters",
          "$.products.*.sku"}},
        // Catalog W1, W2 plus two selective members.
        {"walmart-child",
         "walmart",
         {"$.items.*.bestMarketplacePrice.price", "$.items.*.name",
          "$.items.*.salePrice", "$.items.*.categoryPath"}},
        // Descendant (C1, C2r, C4r, C5r) + child (C4, C5) mix: the
        // skippability-disagreeing case — child lanes want subtree skips
        // the descendant lanes veto.
        {"crossref-mixed",
         "crossref",
         {"$..DOI", "$..author..affiliation..name", "$..title",
          "$..author..ORCID", "$.items.*.title",
          "$.items.*.author.*.ORCID"}},
    };
}

/** Per-query offsets from N independent engine runs (the baseline). */
std::vector<std::vector<std::size_t>> sequential_offsets(
    const std::vector<DescendEngine>& engines, const PaddedString& document)
{
    std::vector<std::vector<std::size_t>> all;
    for (const DescendEngine& engine : engines) {
        OffsetSink sink;
        EngineStatus status = engine.run(document, sink);
        if (!status.ok()) {
            std::fprintf(stderr, "FAIL: sequential run: %s\n",
                         to_string(status).c_str());
            std::exit(1);
        }
        all.push_back(sink.offsets());
    }
    return all;
}

/** Best-of-R wall seconds for one fused engine over one document. */
double time_fused(const multi::FusedEngine& engine,
                  const PaddedString& document, std::size_t repeats)
{
    double best = 0;
    for (std::size_t r = 0; r < repeats; ++r) {
        multi::CountingMultiSink counting(engine.query_set().size());
        Clock::time_point start = Clock::now();
        engine.run(document, counting);
        double seconds = seconds_since(start);
        if (r == 0 || seconds < best) {
            best = seconds;
        }
    }
    return best;
}

int run_throughput(std::size_t target_bytes, std::size_t repeats)
{
    std::vector<bench::BenchRow> rows;
    const char* tier = simd::level_name(simd::default_level());
    int failures = 0;
    for (const SetSpec& spec : scenarios()) {
        PaddedString document(workloads::generate(spec.dataset, target_bytes));
        const std::vector<std::string>& texts = spec.queries;
        const std::size_t n = texts.size();

        std::vector<DescendEngine> engines;
        for (const std::string& text : texts) {
            engines.push_back(DescendEngine::for_query(text));
        }
        std::unique_ptr<multi::FusedEngine> lanes = multi::make_fused_engine(
            texts, {}, multi::FusedBackend::kLanes);
        std::unique_ptr<multi::FusedEngine> product = multi::make_fused_engine(
            texts, {}, multi::FusedBackend::kProduct);

        // Correctness first: both fused match sets must be bit-identical
        // to the N independent runs before a single timing is trusted.
        std::vector<std::vector<std::size_t>> expected =
            sequential_offsets(engines, document);
        bool ok = true;
        for (const multi::FusedEngine* fused :
             {lanes.get(), product.get()}) {
            multi::CollectingMultiSink collected(n);
            EngineStatus status = fused->run(document, collected);
            if (!status.ok() || collected.all() != expected) {
                std::fprintf(stderr, "FAIL: %s: %s offsets != sequential\n",
                             spec.name, fused->name().c_str());
                ok = false;
            }
        }
        if (!ok) {
            ++failures;
            continue;
        }

        double seq_best = 0;
        std::size_t matches = 0;
        for (std::size_t r = 0; r < repeats; ++r) {
            Clock::time_point start = Clock::now();
            std::size_t seq_matches = 0;
            for (const DescendEngine& engine : engines) {
                CountSink sink;
                engine.run(document, sink);
                seq_matches += sink.count();
            }
            double seq_seconds = seconds_since(start);
            matches = seq_matches;
            if (r == 0 || seq_seconds < seq_best) {
                seq_best = seq_seconds;
            }
        }
        double lanes_best = time_fused(*lanes, document, repeats);
        double product_best = time_fused(*product, document, repeats);

        double gib = static_cast<double>(document.size()) /
                     (1024.0 * 1024.0 * 1024.0);
        std::printf("%-20s %zu queries  %7zu matches  seq %8.2f MB/s  "
                    "lanes %8.2f MB/s  product %8.2f MB/s\n",
                    spec.name, n, matches, gib * 1024.0 / seq_best,
                    gib * 1024.0 / lanes_best, gib * 1024.0 / product_best);

        bench::BenchRow seq_row;
        seq_row.section = "multiquery";
        seq_row.name = std::string(spec.name) + "-sequential";
        seq_row.tier = tier;
        seq_row.gbps = gib / seq_best;
        seq_row.extra.emplace_back("queries", static_cast<double>(n));
        seq_row.extra.emplace_back("matches", static_cast<double>(matches));
        rows.push_back(std::move(seq_row));

        struct Backend {
            const char* suffix;
            const multi::FusedEngine* engine;
            double best;
        };
        for (const Backend& backend :
             {Backend{"-lanes", lanes.get(), lanes_best},
              Backend{"-product", product.get(), product_best}}) {
            multi::CountingMultiSink counting(n);
            RunStats stats =
                backend.engine->run_with_stats(document, counting);
            bench::BenchRow row;
            row.section = "multiquery";
            row.name = std::string(spec.name) + backend.suffix;
            row.tier = tier;
            row.gbps = gib / backend.best;
            row.extra.emplace_back("queries", static_cast<double>(n));
            row.extra.emplace_back("speedup", seq_best / backend.best);
            row.extra.emplace_back("matches", static_cast<double>(matches));
            if constexpr (obs::kEnabled) {
                row.extra.emplace_back(
                    "product_states",
                    static_cast<double>(
                        stats.counters.get(obs::Counter::kProductStates)));
                row.extra.emplace_back(
                    "product_skips",
                    static_cast<double>(
                        stats.counters.get(obs::Counter::kProductSkips)));
                row.extra.emplace_back(
                    "child_skip_suppressed",
                    static_cast<double>(stats.counters.get(
                        obs::Counter::kFusedChildSkipSuppressed)));
                row.extra.emplace_back(
                    "sibling_skip_suppressed",
                    static_cast<double>(stats.counters.get(
                        obs::Counter::kFusedSiblingSkipSuppressed)));
                row.extra.emplace_back(
                    "within_skip_suppressed",
                    static_cast<double>(stats.counters.get(
                        obs::Counter::kFusedWithinSkipSuppressed)));
            }
            rows.push_back(std::move(row));
        }
    }

    const char* env = std::getenv("DESCEND_BENCH_JSON");
    std::string path =
        env != nullptr && *env != '\0' ? env : "BENCH_multiquery.json";
    bench::merge_bench_json("multiquery", rows, path);
    return failures == 0 ? 0 : 1;
}

/** Builds a small NDJSON stream out of compact dataset records. */
PaddedString build_stream(const char* dataset, std::size_t records,
                          std::size_t record_bytes)
{
    std::string stream;
    for (std::size_t i = 0; i < 3; ++i) {
        // A handful of generator variants cycled; generation dominates.
        std::string doc =
            workloads::generate(dataset, record_bytes / 2 * (i + 2));
        for (std::size_t r = 0; r * 3 < records; ++r) {
            stream += doc;
            stream += '\n';
        }
    }
    return PaddedString(std::move(stream));
}

/** One subscription mix of the --scale sweep. */
struct ScaleMix {
    const char* name;
    const char* dataset;
    /** Produces the i-th of N subscriptions. */
    std::string (*query)(std::size_t i);
};

/**
 * The two ends of the sharing spectrum. Shared-prefix: every
 * subscription walks the same `$.products.*` spine to a distinct leaf
 * field (a handful of real catalog fields cycled, the rest synthetic
 * tenant fields) — the product trie collapses the spine to one state
 * path, while the lanes backend steps N automata through every event.
 * Disjoint: unrelated `$..fieldN` descendant labels with no sharing at
 * all — the stress case for subset construction, still one transition
 * per event at run time.
 */
std::vector<ScaleMix> scale_mixes()
{
    return {
        {"shared-prefix", "bestbuy",
         [](std::size_t i) {
             static const char* kReal[] = {"sku", "name", "salePrice",
                                           "categoryPath"};
             if (i < 4) {
                 return std::string("$.products.*.") + kReal[i];
             }
             return "$.products.*.tenantField" + std::to_string(i);
         }},
        {"disjoint", "bestbuy",
         [](std::size_t i) {
             static const char* kReal[] = {"sku", "id", "chapter", "price"};
             if (i < 4) {
                 return std::string("$..") + kReal[i];
             }
             return "$..tenantField" + std::to_string(i);
         }},
    };
}

int run_scale(std::size_t target_bytes, std::size_t repeats)
{
    std::vector<bench::BenchRow> rows;
    const char* tier = simd::level_name(simd::default_level());
    int failures = 0;

    for (const ScaleMix& mix : scale_mixes()) {
        PaddedString stream_input =
            build_stream(mix.dataset, 64, target_bytes / 64);
        const simd::Kernels& kernels = simd::best_kernels();
        std::vector<stream::RecordSpan> records =
            stream::split_records(stream_input, kernels);
        double gib = static_cast<double>(stream_input.size()) /
                     (1024.0 * 1024.0 * 1024.0);

        for (std::size_t n : {std::size_t{4}, std::size_t{64},
                              std::size_t{256}, std::size_t{1024}}) {
            std::vector<std::string> texts;
            texts.reserve(n);
            for (std::size_t i = 0; i < n; ++i) {
                texts.push_back(mix.query(i));
            }

            // One worker everywhere: the sweep compares per-event engine
            // work, not thread scaling.
            stream::StreamOptions stream_options;
            stream_options.threads = 1;

            // Oracle once per (mix, N): product must agree with lanes on
            // the full per-query count vector before timings are trusted.
            multi::MultiStreamExecutor lanes_exec(
                multi::MultiQuery::compile(texts), stream_options,
                multi::FusedBackend::kLanes);
            multi::MultiStreamExecutor product_exec(
                multi::MultiQuery::compile(texts), stream_options,
                multi::FusedBackend::kProduct);
            multi::CountingMultiStreamSink lanes_counts(n);
            multi::CountingMultiStreamSink product_counts(n);
            lanes_exec.run_records(stream_input, records, lanes_counts);
            product_exec.run_records(stream_input, records, product_counts);
            std::size_t matches = 0;
            bool ok = true;
            for (std::size_t q = 0; q < n; ++q) {
                matches += lanes_counts.count(q);
                if (lanes_counts.count(q) != product_counts.count(q)) {
                    ok = false;
                }
            }
            if (!ok) {
                std::fprintf(stderr,
                             "FAIL: %s N=%zu: product counts != lanes\n",
                             mix.name, n);
                ++failures;
                continue;
            }

            auto time_stream = [&](const multi::MultiStreamExecutor& exec) {
                double best = 0;
                for (std::size_t r = 0; r < repeats; ++r) {
                    multi::CountingMultiStreamSink sink(n);
                    Clock::time_point start = Clock::now();
                    exec.run_records(stream_input, records, sink);
                    double seconds = seconds_since(start);
                    if (r == 0 || seconds < best) {
                        best = seconds;
                    }
                }
                return best;
            };
            double lanes_best = time_stream(lanes_exec);
            double product_best = time_stream(product_exec);

            // Sequential baseline: N single-query stream passes (N
            // classification passes — the redundancy any fusion removes).
            std::vector<stream::StreamExecutor> sequential;
            sequential.reserve(n);
            for (const std::string& text : texts) {
                sequential.emplace_back(
                    automaton::CompiledQuery::compile(text), stream_options);
            }
            double seq_best = 0;
            for (std::size_t r = 0; r < repeats; ++r) {
                Clock::time_point start = Clock::now();
                for (const stream::StreamExecutor& executor : sequential) {
                    stream::CountingStreamSink sink;
                    executor.run_records(stream_input, records, sink);
                }
                double seconds = seconds_since(start);
                if (r == 0 || seconds < seq_best) {
                    seq_best = seconds;
                }
            }

            std::size_t product_states = 0;
            if (const auto* engine =
                    dynamic_cast<const multi::ProductDescendEngine*>(
                        &product_exec.engine())) {
                product_states = engine->automaton().num_states();
            }
            std::printf(
                "%-14s N=%-5zu %7zu matches  seq %8.2f MB/s  lanes %8.2f "
                "MB/s  product %8.2f MB/s (%zu states, %.2fx vs lanes)\n",
                mix.name, n, matches, gib * 1024.0 / seq_best,
                gib * 1024.0 / lanes_best, gib * 1024.0 / product_best,
                product_states, lanes_best / product_best);

            struct Row {
                const char* backend;
                double best;
            };
            for (const Row& r : {Row{"sequential", seq_best},
                                 Row{"lanes", lanes_best},
                                 Row{"product", product_best}}) {
                bench::BenchRow row;
                row.section = "multiquery_scale";
                row.name = std::string(mix.name) + "-N" + std::to_string(n) +
                           "-" + r.backend;
                row.tier = tier;
                row.gbps = gib / r.best;
                row.extra.emplace_back("queries", static_cast<double>(n));
                row.extra.emplace_back("matches",
                                       static_cast<double>(matches));
                if (std::strcmp(r.backend, "product") == 0) {
                    row.extra.emplace_back(
                        "product_states",
                        static_cast<double>(product_states));
                    row.extra.emplace_back("speedup_vs_lanes",
                                           lanes_best / r.best);
                    row.extra.emplace_back("speedup_vs_sequential",
                                           seq_best / r.best);
                }
                rows.push_back(std::move(row));
            }
        }
    }

    const char* env = std::getenv("DESCEND_BENCH_JSON");
    std::string path =
        env != nullptr && *env != '\0' ? env : "BENCH_multiquery_scale.json";
    bench::merge_bench_json("multiquery_scale", rows, path);
    return failures == 0 ? 0 : 1;
}

int run_smoke(multi::FusedBackend only, bool restricted)
{
    int failures = 0;
    std::vector<multi::FusedBackend> backends;
    if (restricted) {
        backends.push_back(only);
    } else {
        backends.push_back(multi::FusedBackend::kLanes);
        backends.push_back(multi::FusedBackend::kProduct);
    }
    for (const SetSpec& spec : scenarios()) {
        const std::vector<std::string>& texts = spec.queries;
        const std::size_t n = texts.size();
        std::vector<DescendEngine> engines;
        for (const std::string& text : texts) {
            engines.push_back(DescendEngine::for_query(text));
        }

        // Single document: fused == N independent runs, element-wise.
        PaddedString document(
            workloads::generate(spec.dataset, std::size_t{256} << 10));
        std::vector<std::vector<std::size_t>> expected =
            sequential_offsets(engines, document);
        for (multi::FusedBackend backend : backends) {
            std::unique_ptr<multi::FusedEngine> fused =
                multi::make_fused_engine(texts, {}, backend);
            multi::CollectingMultiSink collected(n);
            EngineStatus status = fused->run(document, collected);
            bool ok = status.ok() && collected.all() == expected;
            std::printf("smoke: %-20s single-doc %-7s ... %s\n", spec.name,
                        multi::fused_backend_name(backend).data(),
                        ok ? "ok" : "MISMATCH");
            if (!ok) {
                ++failures;
            }
        }

        // NDJSON: the multi-stream executor against a per-record oracle of
        // independent runs over copied records, at several thread counts.
        PaddedString stream_input =
            build_stream(spec.dataset, 48, std::size_t{32} << 10);
        const simd::Kernels& kernels = simd::best_kernels();
        std::vector<stream::RecordSpan> records =
            stream::split_records(stream_input, kernels);
        std::vector<multi::CollectingMultiStreamSink::Match> oracle;
        for (std::size_t r = 0; r < records.size(); ++r) {
            const stream::RecordSpan& span = records[r];
            PaddedString copy(std::string_view(
                reinterpret_cast<const char*>(stream_input.data()) + span.begin,
                span.size()));
            for (std::size_t q = 0; q < n; ++q) {
                OffsetSink sink;
                if (!engines[q].run(copy, sink).ok()) {
                    continue;
                }
                for (std::size_t offset : sink.offsets()) {
                    oracle.push_back({q, r, offset});
                }
            }
        }
        // The oracle iterates queries-within-record but emits per (r, q);
        // the executor replays records ascending, queries ascending — the
        // same order, so element-wise comparison is exact.
        for (multi::FusedBackend backend : backends) {
            for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                        std::size_t{4}}) {
                stream::StreamOptions options;
                options.threads = threads;
                multi::MultiStreamExecutor executor(
                    multi::MultiQuery::compile(texts), options, backend);
                multi::CollectingMultiStreamSink sink;
                stream::StreamResult result =
                    executor.run_records(stream_input, records, sink);
                bool stream_ok = result.ok() && sink.matches() == oracle;
                std::printf(
                    "smoke: %-20s ndjson %-7s threads=%zu: %zu records, "
                    "%zu matches ... %s\n",
                    spec.name, multi::fused_backend_name(backend).data(),
                    threads, result.records, result.matches,
                    stream_ok ? "ok" : "MISMATCH");
                if (!stream_ok) {
                    ++failures;
                }
            }
        }
    }
    if (failures == 0) {
        std::printf("smoke: fused execution matches independent runs for "
                    "every scenario and backend\n");
    }
    return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv)
{
    descend::bench::apply_simd_flag(argc, argv);
    std::size_t target_mb = 8;
    std::size_t repeats = 5;
    bool smoke = false;
    bool scale = false;
    bool restricted = false;
    multi::FusedBackend backend = multi::FusedBackend::kAuto;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--scale") {
            scale = true;
        } else if (arg.rfind("--fused=", 0) == 0) {
            auto parsed = multi::parse_fused_backend(
                arg.c_str() + std::strlen("--fused="));
            if (!parsed) {
                std::fprintf(stderr, "unknown fused backend '%s'\n",
                             arg.c_str());
                return 2;
            }
            backend = *parsed;
            restricted = backend != multi::FusedBackend::kAuto;
        } else if (arg == "--mb" && i + 1 < argc) {
            target_mb = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--repeat" && i + 1 < argc) {
            repeats = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else {
            std::fprintf(stderr,
                         "usage: bench_multiquery [--mb N] [--repeat N] "
                         "[--simd=LEVEL] [--scale] | --smoke "
                         "[--fused=MODE]\n");
            return 2;
        }
    }
    if (smoke) {
        return run_smoke(backend, restricted);
    }
    const char* env_mb = std::getenv("DESCEND_BENCH_MB");
    if (env_mb != nullptr && *env_mb != '\0') {
        target_mb = static_cast<std::size_t>(
            std::strtoull(env_mb, nullptr, 10));
    }
    if (scale) {
        return run_scale(target_mb << 20, repeats == 0 ? 1 : repeats);
    }
    return run_throughput(target_mb << 20, repeats == 0 ? 1 : repeats);
}
