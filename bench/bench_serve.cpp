/**
 * @file
 * descend-serve load generator: end-to-end daemon latency and throughput.
 *
 *   bench_serve [--connections N] [--requests N] [--mb N] [--simd=LEVEL]
 *   bench_serve --smoke
 *
 * Starts an in-process serve::Server on an ephemeral loopback TCP port and
 * drives it with N concurrent client connections issuing framed requests
 * (the exact wire protocol external clients speak — the loopback stack is
 * part of the measurement). A hand-rolled harness: the quantities of
 * interest are request latency percentiles (p50/p99) and aggregate body
 * throughput, not steady-state iteration time.
 *
 * Scenarios cover the daemon's dispatch matrix and the automaton cache:
 *
 *   single-small / single-large   one query, 4 KiB / multi-MiB documents
 *   multi                         fused 4-query set per request
 *   ndjson                        multi-record stream body per request
 *   cache-cold vs cache-warm      unique query text per request (every
 *                                 request compiles) vs one hot query (every
 *                                 request hits the cache) over tiny bodies,
 *                                 so the row pair isolates compile cost;
 *                                 the warm row's "speedup" extra is
 *                                 cold p50 / warm p50
 *
 * Results go to BENCH_serve.json (DESCEND_BENCH_JSON overrides) via the
 * shared section-merging writer: gbps = total body bytes / wall seconds
 * across all connections, extras carry p50_us / p99_us / requests.
 *
 * --smoke: small documents, correctness only — every mode's response is
 * compared against direct in-process engine runs, malformed frames must
 * come back as structured statuses on a then-closed connection, a 1 ms
 * deadline over a 32 MiB body must be cut off by governance, and a cache
 * hit must flag kCacheHit while returning bit-identical results. Exits
 * non-zero on any failure; wired into CI.
 */
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "descend/descend.h"
#include "descend/serve/server.h"
#include "descend/stream/stream_executor.h"
#include "descend/workloads/datasets.h"

namespace {

using namespace descend;
using Clock = std::chrono::steady_clock;

/** Blocking loopback client speaking one request/response at a time. */
class Client {
public:
    explicit Client(std::uint16_t port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        if (fd_ < 0 || ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                                 sizeof(addr)) != 0) {
            std::fprintf(stderr, "FAIL: cannot connect to bench server\n");
            std::exit(1);
        }
        int one = 1;
        ::setsockopt(fd_, IPPROTO_TCP, 1 /* TCP_NODELAY */, &one, sizeof(one));
    }

    ~Client()
    {
        if (fd_ >= 0) {
            ::close(fd_);
        }
    }

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    void send_bytes(const std::vector<std::uint8_t>& bytes)
    {
        std::size_t sent = 0;
        while (sent < bytes.size()) {
            ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
            if (n <= 0) {
                std::fprintf(stderr, "FAIL: bench client send\n");
                std::exit(1);
            }
            sent += static_cast<std::size_t>(n);
        }
    }

    /** Reads until one full response decodes. False on connection close
     *  with no (further) decodable response. */
    bool read_response(serve::Response& response)
    {
        std::uint8_t chunk[64 << 10];
        for (;;) {
            std::size_t consumed = 0;
            if (!buffer_.empty() &&
                serve::decode_response(buffer_.data(), buffer_.size(),
                                       response, consumed)) {
                buffer_.erase(buffer_.begin(),
                              buffer_.begin() +
                                  static_cast<std::ptrdiff_t>(consumed));
                return true;
            }
            ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0) {
                return false;
            }
            buffer_.insert(buffer_.end(), chunk, chunk + n);
        }
    }

    serve::Response roundtrip(const serve::Request& request)
    {
        send_bytes(serve::encode_request(request));
        serve::Response response;
        if (!read_response(response)) {
            std::fprintf(stderr, "FAIL: bench server closed mid-request\n");
            std::exit(1);
        }
        return response;
    }

    int fd() const noexcept { return fd_; }

private:
    int fd_ = -1;
    std::vector<std::uint8_t> buffer_;
};

double percentile(std::vector<double>& sorted_us, double p)
{
    if (sorted_us.empty()) {
        return 0;
    }
    std::sort(sorted_us.begin(), sorted_us.end());
    std::size_t index = static_cast<std::size_t>(
        p * static_cast<double>(sorted_us.size() - 1) + 0.5);
    return sorted_us[index];
}

struct LoadResult {
    std::vector<double> latencies_us;
    double wall_seconds = 0;
    std::uint64_t body_bytes = 0;
    std::uint64_t matches = 0;
    std::uint64_t failures = 0;
};

/**
 * Drives @p requests_per_conn requests down each of @p connections
 * concurrent clients; make_request(connection, sequence) builds each
 * frame's request.
 */
template <typename MakeRequest>
LoadResult drive(std::uint16_t port, std::size_t connections,
                 std::size_t requests_per_conn, MakeRequest make_request)
{
    std::vector<LoadResult> per_conn(connections);
    Clock::time_point start = Clock::now();
    std::vector<std::thread> threads;
    threads.reserve(connections);
    for (std::size_t c = 0; c < connections; ++c) {
        threads.emplace_back([&, c] {
            Client client(port);
            LoadResult& local = per_conn[c];
            local.latencies_us.reserve(requests_per_conn);
            for (std::size_t r = 0; r < requests_per_conn; ++r) {
                serve::Request request = make_request(c, r);
                local.body_bytes += request.body.size();
                Clock::time_point sent = Clock::now();
                serve::Response response = client.roundtrip(request);
                local.latencies_us.push_back(
                    std::chrono::duration<double, std::micro>(Clock::now() -
                                                              sent)
                        .count());
                local.matches += response.match_count;
                if (!response.ok()) {
                    ++local.failures;
                }
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
    LoadResult total;
    total.wall_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    for (LoadResult& conn : per_conn) {
        total.latencies_us.insert(total.latencies_us.end(),
                                  conn.latencies_us.begin(),
                                  conn.latencies_us.end());
        total.body_bytes += conn.body_bytes;
        total.matches += conn.matches;
        total.failures += conn.failures;
    }
    return total;
}

bench::BenchRow make_row(const char* name, const LoadResult& result)
{
    bench::BenchRow row;
    row.section = "serve";
    row.name = name;
    row.tier = simd::level_name(simd::default_level());
    row.gbps = static_cast<double>(result.body_bytes) /
               (1e9 * result.wall_seconds);
    std::vector<double> latencies = result.latencies_us;
    row.extra.emplace_back("p50_us", percentile(latencies, 0.50));
    row.extra.emplace_back("p99_us", percentile(latencies, 0.99));
    row.extra.emplace_back("requests",
                           static_cast<double>(result.latencies_us.size()));
    return row;
}

void print_row(const bench::BenchRow& row, const LoadResult& result)
{
    std::printf("%-14s %6zu req  %8.0f us p50  %8.0f us p99  %7.3f GB/s"
                "  (%llu matches, %llu failures)\n",
                row.name.c_str(), result.latencies_us.size(),
                row.extra[0].second, row.extra[1].second, row.gbps,
                static_cast<unsigned long long>(result.matches),
                static_cast<unsigned long long>(result.failures));
}

serve::Request single_request(std::string query, std::string body)
{
    serve::Request request;
    request.mode = serve::RequestMode::kSingle;
    request.query = std::move(query);
    request.body = std::move(body);
    return request;
}

int run_throughput(std::size_t connections, std::size_t requests,
                   std::size_t target_mb)
{
    serve::ServerConfig config;
    serve::Server server(config);
    std::string error;
    if (!server.start(error)) {
        std::fprintf(stderr, "FAIL: %s\n", error.c_str());
        return 1;
    }
    const std::uint16_t port = server.tcp_port();

    const std::string small_doc =
        workloads::generate("bestbuy", std::size_t{4} << 10);
    const std::string large_doc =
        workloads::generate("bestbuy", target_mb << 20);
    std::string ndjson_body;
    {
        std::string record =
            workloads::generate("walmart", std::size_t{16} << 10);
        for (std::size_t i = 0; i < 64; ++i) {
            ndjson_body += record;
            ndjson_body += '\n';
        }
    }
    const std::string query = "$.products.*.sku";
    const std::string multi_query =
        "$.products.*.categoryPath.*.id\n$.products.*.sku\n"
        "$.products.*.videoChapters\n$..name";

    std::vector<bench::BenchRow> rows;

    LoadResult result = drive(port, connections, requests, [&](auto, auto) {
        return single_request(query, small_doc);
    });
    rows.push_back(make_row("single-small", result));
    print_row(rows.back(), result);

    result = drive(port, connections, std::max<std::size_t>(requests / 8, 2),
                   [&](auto, auto) {
                       return single_request(query, large_doc);
                   });
    rows.push_back(make_row("single-large", result));
    print_row(rows.back(), result);

    result = drive(port, connections, requests, [&](auto, auto) {
        serve::Request request = single_request(multi_query, small_doc);
        request.mode = serve::RequestMode::kMulti;
        return request;
    });
    rows.push_back(make_row("multi", result));
    print_row(rows.back(), result);

    result = drive(port, connections, std::max<std::size_t>(requests / 4, 2),
                   [&](auto, auto) {
                       serve::Request request =
                           single_request("$.items.*.name", ndjson_body);
                       request.mode = serve::RequestMode::kNdjson;
                       return request;
                   });
    rows.push_back(make_row("ndjson", result));
    print_row(rows.back(), result);

    // The cache pair: every cold request carries a previously unseen query
    // text (a per-connection/sequence head label — compiles, misses, and
    // evicts harmlessly), every warm request the same hot query. The two
    // query shapes are identical (a long child chain under a descendant
    // head that never matches, so head-skipping makes the run itself
    // negligible); the only difference between the rows is the compile.
    const std::string chain =
        ".alpha.beta.gamma.delta.epsilon.zeta.eta.theta.iota.kappa";
    LoadResult cold =
        drive(port, connections, requests, [&](std::size_t c, std::size_t r) {
            return single_request("$..cold_" + std::to_string(c) + "_" +
                                      std::to_string(r) + chain,
                                  small_doc);
        });
    rows.push_back(make_row("cache-cold", cold));
    print_row(rows.back(), cold);

    LoadResult warm = drive(port, connections, requests, [&](auto, auto) {
        return single_request("$..warm_anchor" + chain, small_doc);
    });
    bench::BenchRow warm_row = make_row("cache-warm", warm);
    {
        std::vector<double> cold_lat = cold.latencies_us;
        std::vector<double> warm_lat = warm.latencies_us;
        double cold_p50 = percentile(cold_lat, 0.50);
        double warm_p50 = percentile(warm_lat, 0.50);
        warm_row.extra.emplace_back(
            "speedup", warm_p50 > 0 ? cold_p50 / warm_p50 : 0.0);
    }
    rows.push_back(warm_row);
    print_row(rows.back(), warm);

    server.shutdown();
    server.wait();

    const serve::CacheStats cache = server.cache_stats();
    std::printf("cache: %llu hits, %llu misses, %llu evictions\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                static_cast<unsigned long long>(cache.evictions));

    const char* env = std::getenv("DESCEND_BENCH_JSON");
    std::string path =
        env != nullptr && *env != '\0' ? env : "BENCH_serve.json";
    bench::merge_bench_json("serve", rows, path);
    return 0;
}

// --- smoke ---------------------------------------------------------------

int g_failures = 0;

void check(bool ok, const char* what)
{
    std::printf("smoke: %-44s ... %s\n", what, ok ? "ok" : "FAIL");
    if (!ok) {
        ++g_failures;
    }
}

void run_smoke_checks(std::uint16_t port)
{
    const std::string doc =
        workloads::generate("bestbuy", std::size_t{256} << 10);
    const std::string query = "$.products.*.sku";
    PaddedString padded(doc);

    // Single mode: counts and offsets must equal a direct engine run.
    {
        DescendEngine engine = DescendEngine::for_query(query);
        OffsetsResult expected = engine.offsets_checked(padded);
        Client client(port);
        serve::Request request = single_request(query, doc);
        request.flags = serve::kWantOffsets | serve::kWantStats;
        serve::Response response = client.roundtrip(request);
        check(response.serve_status == serve::ServeStatus::kOk &&
                  response.engine_status.ok() &&
                  response.match_count == expected.offsets.size() &&
                  std::equal(response.offsets.begin(), response.offsets.end(),
                             expected.offsets.begin(), expected.offsets.end()),
              "single mode matches direct engine run");
        check(!response.stats_json.empty() &&
                  response.stats_json.front() == '{',
              "single mode returns a stats report");

        // Same request again: a cache hit with bit-identical results.
        serve::Response again = client.roundtrip(request);
        check(again.cache_hit() && !response.cache_hit(),
              "second request is a cache hit, first was not");
        check(again.match_count == response.match_count &&
                  again.offsets == response.offsets,
              "cache hit returns identical results to cold compile");
    }

    // Multi mode: per-query counts against independent runs.
    {
        std::vector<std::string> queries = {"$.products.*.sku",
                                            "$.products.*.categoryPath.*.id"};
        std::size_t expected_total = 0;
        std::vector<std::uint64_t> expected_pairs;
        for (std::size_t q = 0; q < queries.size(); ++q) {
            DescendEngine engine = DescendEngine::for_query(queries[q]);
            OffsetsResult result = engine.offsets_checked(padded);
            expected_total += result.offsets.size();
            for (std::size_t offset : result.offsets) {
                expected_pairs.push_back(q);
                expected_pairs.push_back(offset);
            }
        }
        Client client(port);
        serve::Request request =
            single_request(queries[0] + "\n" + queries[1], doc);
        request.mode = serve::RequestMode::kMulti;
        request.flags = serve::kWantOffsets;
        serve::Response response = client.roundtrip(request);
        check(response.ok() && response.match_count == expected_total &&
                  response.offsets == expected_pairs,
              "multi mode interleaves (query, offset) pairs");
    }

    // NDJSON mode: absolute offsets against a direct stream run.
    {
        std::string stream_body;
        std::string record = workloads::generate("walmart", std::size_t{8} << 10);
        for (int i = 0; i < 8; ++i) {
            stream_body += record;
            stream_body += '\n';
        }
        PaddedString stream_padded(stream_body);
        stream::StreamExecutor executor =
            stream::StreamExecutor::for_query("$.items.*.name");
        const std::vector<stream::RecordSpan> spans = stream::split_records(
            stream_padded, simd::best_kernels());
        stream::CollectingStreamSink expected;
        stream::StreamResult direct =
            executor.run_records(stream_padded, spans, expected);
        std::vector<std::uint64_t> expected_offsets;
        for (const auto& match : expected.matches()) {
            expected_offsets.push_back(spans[match.record].begin +
                                       match.offset);
        }
        Client client(port);
        serve::Request request = single_request("$.items.*.name", stream_body);
        request.mode = serve::RequestMode::kNdjson;
        request.flags = serve::kWantOffsets;
        serve::Response response = client.roundtrip(request);
        check(response.ok() && response.match_count == direct.matches &&
                  response.offsets == expected_offsets,
              "ndjson mode reports absolute stream offsets");
    }

    // Garbage: a structured status, then a closed connection — never a
    // crashed server (the next check proves it still answers).
    {
        Client client(port);
        std::vector<std::uint8_t> garbage(64, 0xA5);
        client.send_bytes(garbage);
        serve::Response response;
        bool got = client.read_response(response);
        check(got && response.serve_status == serve::ServeStatus::kBadMagic,
              "garbage frame yields a structured bad-magic status");
        check(!client.read_response(response),
              "poisoned connection is closed after the error");
    }

    // Bad query: structured kBadQuery, connection stays usable.
    {
        Client client(port);
        serve::Response response =
            client.roundtrip(single_request("$.[unclosed", doc));
        check(response.serve_status == serve::ServeStatus::kBadQuery,
              "malformed query yields kBadQuery");
        response = client.roundtrip(single_request(query, doc));
        check(response.ok(), "connection survives a bad query");
    }

    // Oversized body: rejected from the header alone.
    {
        Client client(port);
        serve::Request request = single_request(query, doc);
        std::vector<std::uint8_t> frame = serve::encode_request(request);
        // Rewrite body_len (offset 36) to 1 TiB; send only the header — the
        // server must reject without waiting for a payload.
        const std::uint64_t huge = std::uint64_t{1} << 40;
        for (int b = 0; b < 8; ++b) {
            frame[36 + b] = static_cast<std::uint8_t>(huge >> (8 * b));
        }
        frame.resize(serve::kRequestHeaderSize);
        client.send_bytes(frame);
        serve::Response response;
        bool got = client.read_response(response);
        check(got &&
                  response.serve_status == serve::ServeStatus::kBodyTooLarge,
              "oversized body_len rejected from the header");
    }

    // Tenant limit: a request-tightened max_matches trips kMatchLimit.
    {
        Client client(port);
        serve::Request request = single_request(query, doc);
        request.max_matches = 1;
        serve::Response response = client.roundtrip(request);
        check(response.serve_status == serve::ServeStatus::kOk &&
                  response.engine_status.code == StatusCode::kMatchLimit,
              "per-request max_matches enforces kMatchLimit");
    }

    // Deadline: 1 ms over a 32 MiB body must be stopped by governance (the
    // engine polls per 512-byte batch, so even several GB/s of engine
    // cannot finish 32 MiB inside the deadline).
    {
        std::string big = workloads::generate("bestbuy", std::size_t{32} << 20);
        Client client(port);
        serve::Request request = single_request(query, std::move(big));
        request.deadline_ms = 1;
        serve::Response response = client.roundtrip(request);
        check(response.serve_status == serve::ServeStatus::kOk &&
                  response.engine_status.code == StatusCode::kDeadlineExceeded,
              "1 ms deadline over 32 MiB trips kDeadlineExceeded");
    }
}

int run_smoke()
{
    serve::ServerConfig config;
    config.workers = 2;
    serve::Server server(config);
    std::string error;
    if (!server.start(error)) {
        std::fprintf(stderr, "FAIL: %s\n", error.c_str());
        return 1;
    }
    run_smoke_checks(server.tcp_port());
    server.shutdown();
    server.wait();
    check(!server.running(), "server drains to a stop on shutdown");
    if (g_failures == 0) {
        std::printf("smoke: serve daemon end-to-end checks all passed\n");
    }
    return g_failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv)
{
    descend::bench::apply_simd_flag(argc, argv);
    std::size_t connections = 4;
    std::size_t requests = 64;
    std::size_t target_mb = 8;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--connections" && i + 1 < argc) {
            connections = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--requests" && i + 1 < argc) {
            requests = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--mb" && i + 1 < argc) {
            target_mb = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else {
            std::fprintf(stderr,
                         "usage: bench_serve [--connections N] [--requests N] "
                         "[--mb N] [--simd=LEVEL] | --smoke\n");
            return 2;
        }
    }
    if (smoke) {
        return run_smoke();
    }
    const char* env_mb = std::getenv("DESCEND_BENCH_MB");
    if (env_mb != nullptr && *env_mb != '\0') {
        target_mb = static_cast<std::size_t>(
            std::strtoull(env_mb, nullptr, 10));
    }
    return run_throughput(std::max<std::size_t>(connections, 1),
                          std::max<std::size_t>(requests, 1), target_mb);
}
