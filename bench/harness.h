/**
 * @file
 * Shared benchmark infrastructure.
 *
 * - Datasets are generated once per process and cached; size is controlled
 *   by DESCEND_BENCH_MB (default 8 MB per dataset — scaled down from the
 *   paper's ~1 GB dumps to laptop/CI scale; Experiment D shows throughput
 *   is size-invariant).
 * - Before timing, every (dataset, query) pair is verified: the main
 *   engine and the scalar surfer baseline must report the same match
 *   count. A mismatch aborts the benchmark binary — numbers are only ever
 *   produced for agreeing engines.
 * - Throughput is reported via bytes_per_second, matching the paper's
 *   GB/s axis; the match count is attached as a counter.
 */
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "bench/bench_json.h"
#include "bench/catalog.h"
#include "descend/baselines/dom_engine.h"
#include "descend/baselines/ski_engine.h"
#include "descend/baselines/surfer_engine.h"
#include "descend/descend.h"
#include "descend/workloads/datasets.h"

namespace descend::bench {

inline std::size_t dataset_target_bytes()
{
    static const std::size_t target = [] {
        const char* env = std::getenv("DESCEND_BENCH_MB");
        long mb = env != nullptr ? std::strtol(env, nullptr, 10) : 0;
        return static_cast<std::size_t>(mb > 0 ? mb : 8) << 20;
    }();
    return target;
}

/** Cached generated dataset (optionally scaled, for Experiment D). */
inline const PaddedString& dataset(const std::string& name, double scale = 1.0)
{
    announce_simd_level();
    static std::map<std::string, std::unique_ptr<PaddedString>> cache;
    std::string key = name + "@" + std::to_string(scale);
    auto it = cache.find(key);
    if (it == cache.end()) {
        auto target =
            static_cast<std::size_t>(static_cast<double>(dataset_target_bytes()) * scale);
        std::string text = workloads::generate(name, target);
        it = cache.emplace(key, std::make_unique<PaddedString>(text)).first;
        std::fprintf(stderr, "[harness] generated %s: %.1f MB\n", key.c_str(),
                     static_cast<double>(text.size()) / 1e6);
    }
    return *it->second;
}

/**
 * Cross-engine verified match count for a (dataset, query) pair. The
 * first call runs both the main engine and the surfer baseline; any
 * disagreement aborts the process.
 */
inline std::size_t verified_count(const std::string& dataset_name,
                                  const std::string& query, double scale = 1.0)
{
    static std::map<std::string, std::size_t> cache;
    std::string key = dataset_name + "@" + std::to_string(scale) + "|" + query;
    auto it = cache.find(key);
    if (it != cache.end()) {
        return it->second;
    }
    const PaddedString& doc = dataset(dataset_name, scale);
    CountResult fast_result = DescendEngine::for_query(query).count_checked(doc);
    CountResult slow_result = SurferEngine::for_query(query).count_checked(doc);
    if (!fast_result.ok() || !slow_result.ok()) {
        std::fprintf(stderr,
                     "[harness] VERIFICATION FAILED: %s on %s: descend=%s "
                     "surfer=%s\n",
                     query.c_str(), dataset_name.c_str(),
                     to_string(fast_result.status).c_str(),
                     to_string(slow_result.status).c_str());
        std::abort();
    }
    std::size_t fast = fast_result.count;
    std::size_t slow = slow_result.count;
    if (fast != slow) {
        std::fprintf(stderr,
                     "[harness] VERIFICATION FAILED: %s on %s: descend=%zu "
                     "surfer=%zu\n",
                     query.c_str(), dataset_name.c_str(), fast, slow);
        std::abort();
    }
    cache[key] = fast;
    return fast;
}

/** One timed engine run per iteration; reports GB/s and the match count. */
template <typename Engine>
void run_engine_benchmark(benchmark::State& state, const Engine& engine,
                          const PaddedString& doc, std::size_t expected_count)
{
    for (auto _ : state) {
        std::size_t count = engine.count(doc);
        benchmark::DoNotOptimize(count);
        if (count != expected_count) {
            state.SkipWithError("match count changed between runs");
            return;
        }
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(doc.size()));
    state.counters["matches"] = static_cast<double>(expected_count);
}

/**
 * Registers up to three benchmarks for a catalog entry:
 *   <id>/descend, <id>/jsonski (when supported), <id>/jsurfer.
 */
inline void register_spec(const QuerySpec& spec, bool include_surfer = true)
{
    benchmark::RegisterBenchmark(
        (spec.id + "/descend").c_str(),
        [spec](benchmark::State& state) {
            const PaddedString& doc = dataset(spec.dataset);
            std::size_t expected = verified_count(spec.dataset, spec.query);
            DescendEngine engine = DescendEngine::for_query(spec.query);
            run_engine_benchmark(state, engine, doc, expected);
        });
    if (spec.ski_supported) {
        benchmark::RegisterBenchmark(
            (spec.id + "/jsonski").c_str(),
            [spec](benchmark::State& state) {
                const PaddedString& doc = dataset(spec.dataset);
                std::size_t expected = verified_count(spec.dataset, spec.query);
                SkiEngine engine = SkiEngine::for_query(spec.query);
                std::size_t ski_count = engine.count(doc);
                if (ski_count != expected) {
                    // JSONSki's wildcard is array-only; if the counts differ
                    // the comparison would be meaningless, so refuse.
                    state.SkipWithError("jsonski count differs (semantics)");
                    return;
                }
                run_engine_benchmark(state, engine, doc, expected);
            });
    }
    if (include_surfer) {
        benchmark::RegisterBenchmark(
            (spec.id + "/jsurfer").c_str(),
            [spec](benchmark::State& state) {
                const PaddedString& doc = dataset(spec.dataset);
                std::size_t expected = verified_count(spec.dataset, spec.query);
                SurferEngine engine = SurferEngine::for_query(spec.query);
                run_engine_benchmark(state, engine, doc, expected);
            });
    }
}

inline void register_ids(const std::vector<std::string>& ids,
                         bool include_surfer = true)
{
    for (const QuerySpec& spec : catalog_subset(ids)) {
        register_spec(spec, include_surfer);
    }
}

}  // namespace descend::bench
