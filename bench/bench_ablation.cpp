/**
 * @file
 * Ablation study of the design choices DESIGN.md calls out (not a paper
 * table; quantifies each mechanism's contribution):
 *
 *  - full:        all four skips, AVX2 pipeline (the paper configuration);
 *  - no-leaf:     commas/colons always classified (Section 3.3 skipping
 *                 leaves disabled);
 *  - no-child:    rejected subtrees walked instead of fast-forwarded;
 *  - no-sibling:  no fast-forward after unitary matches;
 *  - no-head:     `$..label` queries run the main loop from byte 0
 *                 instead of memmem skipping to the label;
 *  - no-skips:    the plain depth-stack simulation of Section 3.2;
 *  - scalar:      all skips on, but the SWAR kernels instead of AVX2 —
 *                 isolating the value of SIMD classification itself.
 *
 * Representative queries: one per regime (child-heavy, rare-descendant,
 * low-selectivity descendant, nested-ambiguous).
 */
#include "bench/harness.h"

namespace {

using namespace descend;

struct Variant {
    const char* name;
    EngineOptions options;
};

std::vector<Variant> variants()
{
    std::vector<Variant> result;
    EngineOptions full;
    result.push_back({"full", full});

    EngineOptions no_leaf = full;
    no_leaf.leaf_skipping = false;
    result.push_back({"no-leaf", no_leaf});

    EngineOptions no_child = full;
    no_child.child_skipping = false;
    result.push_back({"no-child", no_child});

    EngineOptions no_sibling = full;
    no_sibling.sibling_skipping = false;
    result.push_back({"no-sibling", no_sibling});

    EngineOptions no_head = full;
    no_head.head_skipping = false;
    result.push_back({"no-head", no_head});

    EngineOptions no_skips = full;
    no_skips.leaf_skipping = false;
    no_skips.child_skipping = false;
    no_skips.sibling_skipping = false;
    no_skips.head_skipping = false;
    result.push_back({"no-skips", no_skips});

    EngineOptions scalar = full;
    scalar.simd = simd::Level::scalar;
    result.push_back({"scalar", scalar});

    // The Section 4.5 future-work classifier, implemented here as an
    // extension: within-element label fast-forwarding.
    EngineOptions within = full;
    within.label_within_skipping = true;
    result.push_back({"within", within});
    return result;
}

void register_ablations(const char* id)
{
    auto specs = bench::catalog_subset({id});
    if (specs.empty()) {
        return;
    }
    bench::QuerySpec spec = specs.front();
    for (const Variant& variant : variants()) {
        benchmark::RegisterBenchmark(
            (spec.id + "/" + variant.name).c_str(),
            [spec, variant](benchmark::State& state) {
                const PaddedString& doc = bench::dataset(spec.dataset);
                std::size_t expected =
                    bench::verified_count(spec.dataset, spec.query);
                DescendEngine engine(automaton::CompiledQuery::compile(spec.query),
                                     variant.options);
                bench::run_engine_benchmark(state, engine, doc, expected);
            });
    }
}

}  // namespace

int main(int argc, char** argv)
{
    register_ablations("B1");   // child+wildcard chains, many matches
    register_ablations("B2");   // rare branch: child skipping dominates
    register_ablations("B3r");  // rare label: head-skipping dominates
    register_ablations("C1");   // low-selectivity descendant
    register_ablations("C2r");  // nested authors: the within-skip target
    register_ablations("A2");   // nested ambiguous labels, deep stack
    register_ablations("Ts");   // unitary chain: sibling skipping
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
