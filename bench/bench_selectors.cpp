/**
 * @file
 * Extended-selector throughput: array indices, slices, name unions and
 * filter predicates (DESIGN.md §4.12) over the walmart items dump — the
 * flattest dataset, so per-entry counter work is the dominant cost and
 * not hidden behind deep skipping.
 *
 *   bench_selectors [--mb N] [--repeat N] [--simd=LEVEL]
 *   bench_selectors --smoke [--simd=LEVEL]
 *
 * A hand-rolled harness (not google-benchmark): one best-of-R timed pass
 * per query, every timed query first verified offset-for-offset against
 * the DOM oracle (and the surfer baseline's count). Rows go to
 * BENCH_selectors.json (DESCEND_BENCH_JSON overrides), section
 * "selectors": gbps, matches, and a `counting` flag marking rows whose
 * automaton tracks array-entry counters. The "wildcard-reference" row is
 * the counter-free yardstick: comparing `$.items[0:].salePrice` against
 * `$.items.*.salePrice` isolates the per-comma counter overhead.
 *
 * --smoke: a small document, no timing, every query checked against the
 * DOM oracle under the default engine options AND with every skip
 * disabled; non-zero exit on any mismatch. Wired into CI on the scalar
 * tier and under ASan.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "descend/baselines/dom_engine.h"
#include "descend/baselines/surfer_engine.h"
#include "descend/descend.h"
#include "descend/json/dom.h"
#include "descend/workloads/datasets.h"

namespace {

using namespace descend;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

struct SelectorSpec {
    const char* name;
    const char* query;
};

/**
 * One spec per selector family, plus the counter-free wildcard yardstick.
 * Bounds are sized for the 8 MB default document (~2500 items): the
 * slices select a real fraction of the array, the filters have selective
 * (~6% existence, price threshold) and unselective variants.
 */
std::vector<SelectorSpec> specs()
{
    return {
        {"wildcard-reference", "$.items.*.salePrice"},
        {"index", "$.items[100].name"},
        {"slice-closed", "$.items[0:1000].salePrice"},
        {"slice-open", "$.items[1000:].itemId"},
        {"slice-full", "$.items[0:].salePrice"},
        {"union-2", "$.items.*['name','salePrice']"},
        {"filter-exists", "$.items[?(@.bestMarketplacePrice)]"},
        {"filter-number", "$.items[?(@.salePrice<100)]"},
        {"filter-string", "$.items[?(@.stock=='Limited')]"},
        {"filter-chain", "$.items[?(@.bestMarketplacePrice.price>=500)]"},
    };
}

/** DOM-oracle offsets; the ground truth every engine run is held to. */
std::vector<std::size_t> oracle_offsets(const std::string& query,
                                        const PaddedString& document)
{
    DomEngine oracle(query::Query::parse(query));
    return oracle.offsets(document);
}

/** Engine offsets under @p options; exits loudly on an engine error. */
bool engine_matches_oracle(const std::string& query,
                           const PaddedString& document,
                           const EngineOptions& options,
                           const std::vector<std::size_t>& expected,
                           const char* what)
{
    DescendEngine engine(automaton::CompiledQuery::compile(query), options);
    OffsetSink sink;
    EngineStatus status = engine.run(document, sink);
    if (!status.ok()) {
        std::fprintf(stderr, "FAIL: %s: %s: %s\n", what, query.c_str(),
                     to_string(status).c_str());
        return false;
    }
    if (sink.offsets() != expected) {
        std::fprintf(stderr,
                     "FAIL: %s: %s: engine %zu offsets != oracle %zu\n", what,
                     query.c_str(), sink.offsets().size(), expected.size());
        return false;
    }
    return true;
}

int verify_all(const PaddedString& document, bool verbose)
{
    int failures = 0;
    EngineOptions no_skips;
    no_skips.leaf_skipping = false;
    no_skips.child_skipping = false;
    no_skips.sibling_skipping = false;
    no_skips.head_skipping = false;
    for (const SelectorSpec& spec : specs()) {
        std::vector<std::size_t> expected =
            oracle_offsets(spec.query, document);
        bool ok =
            engine_matches_oracle(spec.query, document, {}, expected,
                                  "default options") &&
            engine_matches_oracle(spec.query, document, no_skips, expected,
                                  "skips disabled");
        // The surfer baseline evaluates the same grammar a third way.
        std::size_t surfer =
            SurferEngine::for_query(spec.query).count(document);
        if (surfer != expected.size()) {
            std::fprintf(stderr, "FAIL: surfer: %s: %zu != oracle %zu\n",
                         spec.query, surfer, expected.size());
            ok = false;
        }
        if (verbose) {
            std::printf("smoke: %-20s %7zu matches ... %s\n", spec.name,
                        expected.size(), ok ? "ok" : "MISMATCH");
        }
        if (!ok) {
            ++failures;
        }
    }
    if (verbose && failures == 0) {
        std::printf("smoke: every selector family agrees with the DOM "
                    "oracle on %s tier\n",
                    simd::level_name(simd::default_level()));
    }
    return failures;
}

int run_throughput(std::size_t target_bytes, std::size_t repeats)
{
    PaddedString document(workloads::generate("walmart", target_bytes));
    if (verify_all(document, /*verbose=*/false) != 0) {
        return 1;
    }

    std::vector<bench::BenchRow> rows;
    const char* tier = simd::level_name(simd::default_level());
    double gib =
        static_cast<double>(document.size()) / (1024.0 * 1024.0 * 1024.0);
    for (const SelectorSpec& spec : specs()) {
        auto cq = automaton::CompiledQuery::compile(spec.query);
        bool counting = cq.has_indices();
        bool filtered = cq.filter() != nullptr;
        DescendEngine engine = DescendEngine::for_query(spec.query);
        std::size_t matches = 0;
        double best = 0;
        for (std::size_t r = 0; r < repeats; ++r) {
            CountSink sink;
            Clock::time_point start = Clock::now();
            engine.run(document, sink);
            double seconds = seconds_since(start);
            matches = sink.count();
            if (r == 0 || seconds < best) {
                best = seconds;
            }
        }
        std::printf("%-20s %-45s %7zu matches  %8.2f MB/s\n", spec.name,
                    spec.query, matches, gib * 1024.0 / best);
        bench::BenchRow row;
        row.section = "selectors";
        row.name = spec.name;
        row.tier = tier;
        row.gbps = gib / best;
        row.extra.emplace_back("matches", static_cast<double>(matches));
        row.extra.emplace_back("counting", counting ? 1.0 : 0.0);
        row.extra.emplace_back("filtered", filtered ? 1.0 : 0.0);
        rows.push_back(std::move(row));
    }

    const char* env = std::getenv("DESCEND_BENCH_JSON");
    std::string path =
        env != nullptr && *env != '\0' ? env : "BENCH_selectors.json";
    bench::merge_bench_json("selectors", rows, path);
    return 0;
}

}  // namespace

int main(int argc, char** argv)
{
    descend::bench::apply_simd_flag(argc, argv);
    std::size_t target_mb = 8;
    std::size_t repeats = 5;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--mb" && i + 1 < argc) {
            target_mb = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--repeat" && i + 1 < argc) {
            repeats = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else {
            std::fprintf(stderr,
                         "usage: bench_selectors [--mb N] [--repeat N] "
                         "[--simd=LEVEL] | --smoke\n");
            return 2;
        }
    }
    if (smoke) {
        PaddedString document(
            descend::workloads::generate("walmart", std::size_t{512} << 10));
        return verify_all(document, /*verbose=*/true) == 0 ? 0 : 1;
    }
    const char* env_mb = std::getenv("DESCEND_BENCH_MB");
    if (env_mb != nullptr && *env_mb != '\0') {
        target_mb =
            static_cast<std::size_t>(std::strtoull(env_mb, nullptr, 10));
    }
    return run_throughput(target_mb << 20, repeats == 0 ? 1 : repeats);
}
