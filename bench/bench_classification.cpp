/**
 * @file
 * Table 2 reproduction (paper Section 4.1): the cost of naive
 * classification (one cmpeq per accepted value, ORed) as the number of
 * accepted values grows, against the shuffle-based lookup methods whose
 * cost is flat.
 *
 * The paper derives cycle counts from Intel's instruction tables; here the
 * same crossover is measured empirically as bytes/second over a 1 MiB
 * buffer. Expected shape: naive throughput decays roughly linearly with
 * the value count; eq (non-overlapping) and or8 stay flat and overtake
 * naive at ~4-5 values; the general (two-table) method costs slightly more
 * than or8 but is still flat.
 *
 * On top of the Table 2 google-benchmarks, this binary measures the
 * batched single-load pipeline against the per-block (seed) formulation:
 * the same eight masks per 64-byte block (unescaped quotes, in-string,
 * the four bracket masks, commas, colons), computed either via separate
 * eq_mask/prefix_xor calls that each reload the block, or via one
 * classify_batch call over 8 consecutive blocks. Results are printed per
 * tier and recorded in BENCH_pipeline.json (section "pipeline").
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "descend/classify/raw_tables.h"
#include "descend/util/bits.h"
#include "descend/workloads/builder.h"

namespace {

using namespace descend;

constexpr std::size_t kBufferBytes = 1 << 20;

const std::vector<std::uint8_t>& buffer()
{
    static const std::vector<std::uint8_t> data = [] {
        workloads::Rng rng(0x7ab1e2);
        std::vector<std::uint8_t> bytes(kBufferBytes + simd::kBatchSize);
        for (auto& byte : bytes) {
            byte = static_cast<std::uint8_t>(rng.next() & 0x7f);
        }
        return bytes;
    }();
    return data;
}

/** A predicate accepting `values` distinct ASCII bytes. */
classify::ByteSet predicate(int values)
{
    classify::ByteSet accept{};
    // Spread over distinct nibble rows to exercise realistic groups.
    for (int i = 0; i < values; ++i) {
        accept[(0x20 + 0x10 * (i % 6)) + (i / 6)] = true;
    }
    return accept;
}

void run_classifier(benchmark::State& state, const classify::RawClassifier& classifier,
                    simd::Level level)
{
    const simd::Kernels& kernels = simd::kernels_for(level);
    const auto& data = buffer();
    for (auto _ : state) {
        std::uint64_t checksum = 0;
        for (std::size_t offset = 0; offset < kBufferBytes;
             offset += simd::kBlockSize) {
            checksum ^= classifier.run(kernels, data.data() + offset);
        }
        benchmark::DoNotOptimize(checksum);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kBufferBytes));
}

void register_benchmarks()
{
    for (int values : {1, 2, 3, 4, 5, 6, 7, 8, 12, 16}) {
        classify::ByteSet accept = predicate(values);
        auto naive =
            classify::RawClassifier::build_with_method(accept, classify::Method::kNaive);
        benchmark::RegisterBenchmark(
            ("naive/values:" + std::to_string(values)).c_str(),
            [naive](benchmark::State& state) {
                run_classifier(state, *naive, simd::Level::avx2);
            });
        for (classify::Method method :
             {classify::Method::kEq, classify::Method::kOr8,
              classify::Method::kGeneral}) {
            auto classifier = classify::RawClassifier::build_with_method(accept, method);
            if (!classifier.has_value()) {
                continue;
            }
            benchmark::RegisterBenchmark(
                (std::string(classify::method_name(method)) +
                 "/values:" + std::to_string(values))
                    .c_str(),
                [classifier](benchmark::State& state) {
                    run_classifier(state, *classifier, simd::Level::avx2);
                });
        }
    }
    // The scalar pipeline's naive classifier, for reference.
    classify::ByteSet accept = predicate(6);
    auto naive =
        classify::RawClassifier::build_with_method(accept, classify::Method::kNaive);
    benchmark::RegisterBenchmark("naive-scalar/values:6",
                                 [naive](benchmark::State& state) {
                                     run_classifier(state, *naive,
                                                    simd::Level::scalar);
                                 });
}

// ---------------------------------------------------------------------------
// Batched single-load pipeline vs the per-block formulation.
// ---------------------------------------------------------------------------

/**
 * The seed pipeline: every mask from a separate kernel call, each call
 * reloading the 64-byte block — two eq_masks + escape analysis + carry-less
 * multiply for the quote stage, then six more eq_masks for brackets,
 * commas and colons. This is exactly the per-block work the iterator's
 * classifiers used to do (QuoteClassifier + StructuralIterator masks).
 */
std::uint64_t run_perblock(const simd::Kernels& kernels,
                           const std::uint8_t* data, std::size_t bytes)
{
    std::uint64_t checksum = 0;
    bool escape_carry = false;
    std::uint64_t in_string_carry = 0;
    for (std::size_t offset = 0; offset < bytes; offset += simd::kBlockSize) {
        const std::uint8_t* block = data + offset;
        std::uint64_t backslashes = kernels.eq_mask(block, '\\');
        std::uint64_t quotes = kernels.eq_mask(block, '"');
        bool escape_out = false;
        std::uint64_t escaped =
            bits::find_escaped(backslashes, escape_carry, escape_out);
        escape_carry = escape_out;
        std::uint64_t unescaped = quotes & ~escaped;
        std::uint64_t in_string = kernels.prefix_xor(unescaped) ^ in_string_carry;
        in_string_carry = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(in_string) >> 63);
        checksum ^= unescaped ^ in_string;
        checksum ^= kernels.eq_mask(block, '{') ^ kernels.eq_mask(block, '}');
        checksum ^= kernels.eq_mask(block, '[') ^ kernels.eq_mask(block, ']');
        checksum ^= kernels.eq_mask(block, ',') ^ kernels.eq_mask(block, ':');
    }
    return checksum;
}

/** The batched pipeline: one classify_batch call per 8 blocks. */
std::uint64_t run_batched(const simd::Kernels& kernels,
                          const std::uint8_t* data, std::size_t bytes)
{
    std::uint64_t checksum = 0;
    simd::BatchCarry carry;
    simd::BlockMasks masks[simd::kBatchBlocks];
    for (std::size_t offset = 0; offset < bytes; offset += simd::kBatchSize) {
        kernels.classify_batch(data + offset, carry, masks);
        for (const simd::BlockMasks& block : masks) {
            checksum ^= block.unescaped_quotes ^ block.in_string;
            checksum ^= block.open_braces ^ block.close_braces;
            checksum ^= block.open_brackets ^ block.close_brackets;
            checksum ^= block.commas ^ block.colons;
        }
    }
    return checksum;
}

/** Best-of-N GB/s for one formulation on one tier. */
template <typename Fn>
double measure_gbps(Fn&& fn)
{
    const auto& data = buffer();
    std::uint64_t sink = fn(data.data(), kBufferBytes);  // warm-up
    double best_seconds = 1e100;
    for (int run = 0; run < 7; ++run) {
        auto start = std::chrono::steady_clock::now();
        sink ^= fn(data.data(), kBufferBytes);
        double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        best_seconds = std::min(best_seconds, seconds);
    }
    benchmark::DoNotOptimize(sink);
    return static_cast<double>(kBufferBytes) / best_seconds / 1e9;
}

/** Measures both formulations on every available tier; returns the rows. */
std::vector<bench::BenchRow> run_pipeline_comparison()
{
    std::vector<bench::BenchRow> rows;
    std::printf("\n==== batched single-load pipeline vs per-block ====\n\n");
    std::printf("%-8s %14s %14s %9s\n", "tier", "perblock GB/s", "batched GB/s",
                "speedup");
    std::vector<simd::Level> levels = {simd::Level::scalar};
    if (simd::avx2_available()) {
        levels.push_back(simd::Level::avx2);
    }
    if (simd::avx512_available()) {
        levels.push_back(simd::Level::avx512);
    }
    for (simd::Level level : levels) {
        const simd::Kernels& kernels = simd::kernels_for(level);
        if (kernels.level != level) {
            continue;  // capped by DESCEND_SIMD_LEVEL: skip, don't mislabel
        }
        double perblock = measure_gbps([&](const std::uint8_t* d, std::size_t n) {
            return run_perblock(kernels, d, n);
        });
        double batched = measure_gbps([&](const std::uint8_t* d, std::size_t n) {
            return run_batched(kernels, d, n);
        });
        std::printf("%-8s %14.2f %14.2f %8.2fx\n", kernels.name, perblock,
                    batched, batched / perblock);
        rows.push_back({"pipeline", "perblock", kernels.name, perblock});
        rows.push_back({"pipeline", "batched", kernels.name, batched});
    }
    std::printf("\n");
    return rows;
}

}  // namespace

int main(int argc, char** argv)
{
    descend::bench::apply_simd_flag(argc, argv);
    register_benchmarks();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    std::vector<descend::bench::BenchRow> rows = run_pipeline_comparison();
    descend::bench::merge_bench_json("pipeline", rows);
    benchmark::Shutdown();
    return 0;
}
