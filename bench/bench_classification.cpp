/**
 * @file
 * Table 2 reproduction (paper Section 4.1): the cost of naive
 * classification (one cmpeq per accepted value, ORed) as the number of
 * accepted values grows, against the shuffle-based lookup methods whose
 * cost is flat.
 *
 * The paper derives cycle counts from Intel's instruction tables; here the
 * same crossover is measured empirically as bytes/second over a 1 MiB
 * buffer. Expected shape: naive throughput decays roughly linearly with
 * the value count; eq (non-overlapping) and or8 stay flat and overtake
 * naive at ~4-5 values; the general (two-table) method costs slightly more
 * than or8 but is still flat.
 */
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "descend/classify/raw_tables.h"
#include "descend/workloads/builder.h"

namespace {

using namespace descend;

constexpr std::size_t kBufferBytes = 1 << 20;

const std::vector<std::uint8_t>& buffer()
{
    static const std::vector<std::uint8_t> data = [] {
        workloads::Rng rng(0x7ab1e2);
        std::vector<std::uint8_t> bytes(kBufferBytes + simd::kBlockSize);
        for (auto& byte : bytes) {
            byte = static_cast<std::uint8_t>(rng.next() & 0x7f);
        }
        return bytes;
    }();
    return data;
}

/** A predicate accepting `values` distinct ASCII bytes. */
classify::ByteSet predicate(int values)
{
    classify::ByteSet accept{};
    // Spread over distinct nibble rows to exercise realistic groups.
    for (int i = 0; i < values; ++i) {
        accept[(0x20 + 0x10 * (i % 6)) + (i / 6)] = true;
    }
    return accept;
}

void run_classifier(benchmark::State& state, const classify::RawClassifier& classifier,
                    simd::Level level)
{
    const simd::Kernels& kernels = simd::kernels_for(level);
    const auto& data = buffer();
    for (auto _ : state) {
        std::uint64_t checksum = 0;
        for (std::size_t offset = 0; offset < kBufferBytes;
             offset += simd::kBlockSize) {
            checksum ^= classifier.run(kernels, data.data() + offset);
        }
        benchmark::DoNotOptimize(checksum);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(kBufferBytes));
}

void register_benchmarks()
{
    for (int values : {1, 2, 3, 4, 5, 6, 7, 8, 12, 16}) {
        classify::ByteSet accept = predicate(values);
        auto naive =
            classify::RawClassifier::build_with_method(accept, classify::Method::kNaive);
        benchmark::RegisterBenchmark(
            ("naive/values:" + std::to_string(values)).c_str(),
            [naive](benchmark::State& state) {
                run_classifier(state, *naive, simd::Level::avx2);
            });
        for (classify::Method method :
             {classify::Method::kEq, classify::Method::kOr8,
              classify::Method::kGeneral}) {
            auto classifier = classify::RawClassifier::build_with_method(accept, method);
            if (!classifier.has_value()) {
                continue;
            }
            benchmark::RegisterBenchmark(
                (std::string(classify::method_name(method)) +
                 "/values:" + std::to_string(values))
                    .c_str(),
                [classifier](benchmark::State& state) {
                    run_classifier(state, *classifier, simd::Level::avx2);
                });
        }
    }
    // The scalar pipeline's naive classifier, for reference.
    classify::ByteSet accept = predicate(6);
    auto naive =
        classify::RawClassifier::build_with_method(accept, classify::Method::kNaive);
    benchmark::RegisterBenchmark("naive-scalar/values:6",
                                 [naive](benchmark::State& state) {
                                     run_classifier(state, *naive,
                                                    simd::Level::scalar);
                                 });
}

}  // namespace

int main(int argc, char** argv)
{
    register_benchmarks();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
