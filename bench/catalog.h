/**
 * @file
 * The benchmark catalog: every query of the paper's evaluation (Tables 4,
 * 5, 6 and the Appendix C tabular format), keyed by the paper's ids, over
 * the synthetic stand-in datasets.
 *
 * Match counts differ from the paper's (our datasets are generated, not
 * the original dumps); what is reproduced is each query's *selectivity
 * class* and the relative performance shapes (see EXPERIMENTS.md).
 */
#pragma once

#include <string>
#include <vector>

namespace descend::bench {

struct QuerySpec {
    std::string id;        ///< paper id (B1, B1r, ...)
    std::string dataset;   ///< generator name
    std::string query;     ///< JSONPath text
    bool ski_supported;    ///< within the JSONSki fragment (no descendants)
    std::string rewrite_of;  ///< for rewritten queries: the original's id
};

inline const std::vector<QuerySpec>& catalog()
{
    static const std::vector<QuerySpec> specs = {
        // --- AST (Experiment C / Appendix C) ---
        {"A1", "ast", "$..decl.name", false, ""},
        {"A2", "ast", "$..inner..inner..type.qualType", false, ""},
        {"A3", "ast", "$..loc.includedFrom.file", false, ""},
        // --- BestBuy (Experiment A Table 4, rewrites Table 5) ---
        {"B1", "bestbuy", "$.products.*.categoryPath.*.id", true, ""},
        {"B1r", "bestbuy", "$..categoryPath..id", false, "B1"},
        {"B2", "bestbuy", "$.products.*.videoChapters.*.chapter", true, ""},
        {"B2r", "bestbuy", "$..videoChapters..chapter", false, "B2"},
        {"B3", "bestbuy", "$.products.*.videoChapters", true, ""},
        {"B3r", "bestbuy", "$..videoChapters", false, "B3"},
        // --- Crossref (Experiment C) ---
        {"C1", "crossref", "$..DOI", false, ""},
        {"C2", "crossref", "$.items.*.author.*.affiliation.*.name", true, ""},
        {"C2r", "crossref", "$..author..affiliation..name", false, "C2"},
        {"C3", "crossref", "$.items.*.editor.*.affiliation.*.name", true, ""},
        {"C3r", "crossref", "$..editor..affiliation..name", false, "C3"},
        {"C4", "crossref", "$.items.*.title", true, ""},
        {"C4r", "crossref", "$..title", false, "C4"},
        {"C5", "crossref", "$.items.*.author.*.ORCID", true, ""},
        {"C5r", "crossref", "$..author..ORCID", false, "C5"},
        // --- GoogleMap ---
        {"G1", "googlemap", "$.*.routes.*.legs.*.steps.*.distance.text", true, ""},
        {"G2", "googlemap", "$.*.available_travel_modes", true, ""},
        {"G2r", "googlemap", "$..available_travel_modes", false, "G2"},
        // --- NSPL ---
        {"N1", "nspl", "$.meta.view.columns.*.name", true, ""},
        {"N2", "nspl", "$.data.*.*.*", true, ""},
        // --- OpenFood (Appendix C) ---
        {"O1", "openfood", "$.products.*.vitamins_tags", true, ""},
        {"O1r", "openfood", "$..vitamins_tags", false, "O1"},
        {"O2", "openfood", "$.products.*.added_countries_tags", true, ""},
        {"O2r", "openfood", "$..added_countries_tags", false, "O2"},
        {"O3", "openfood", "$.products.*.specific_ingredients.*.ingredient", true,
         ""},
        {"O3r", "openfood", "$..specific_ingredients..ingredient", false, "O3"},
        // --- Twitter (large) ---
        {"T1", "twitter", "$.*.entities.urls.*.url", true, ""},
        {"T2", "twitter", "$.*.text", true, ""},
        // --- Twitter (small) ---
        {"Ts", "twitter_small", "$.search_metadata.count", true, ""},
        {"Tsp", "twitter_small", "$..search_metadata.count", false, "Ts"},
        {"Tsr", "twitter_small", "$..count", false, "Ts"},
        {"Ts4", "twitter_small", "$..hashtags..text", false, ""},
        {"Ts5", "twitter_small", "$..retweeted_status..hashtags..text", false, ""},
        // --- Walmart ---
        {"W1", "walmart", "$.items.*.bestMarketplacePrice.price", true, ""},
        {"W1r", "walmart", "$..bestMarketplacePrice.price", false, "W1"},
        {"W2", "walmart", "$.items.*.name", true, ""},
        {"W2r", "walmart", "$..name", false, "W2"},
        // --- Wikimedia ---
        {"Wi", "wikimedia", "$.*.claims.P150.*.mainsnak.property", true, ""},
        {"Wir", "wikimedia", "$..P150..mainsnak.property", false, "Wi"},
    };
    return specs;
}

/** Catalog entries with the given ids, in the given order. */
inline std::vector<QuerySpec> catalog_subset(const std::vector<std::string>& ids)
{
    std::vector<QuerySpec> subset;
    for (const std::string& id : ids) {
        for (const QuerySpec& spec : catalog()) {
            if (spec.id == id) {
                subset.push_back(spec);
                break;
            }
        }
    }
    return subset;
}

}  // namespace descend::bench
