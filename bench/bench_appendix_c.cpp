/**
 * @file
 * The full Appendix C tabular benchmark: every query id of the paper's
 * result table (A1..Wir, including the OpenFood and extra Crossref /
 * Twitter-small queries), each over descend / jsonski (where supported) /
 * jsurfer. S0-S4 live in bench_scalability. This is the comprehensive run
 * backing EXPERIMENTS.md.
 */
#include "bench/harness.h"

int main(int argc, char** argv)
{
    for (const descend::bench::QuerySpec& spec : descend::bench::catalog()) {
        descend::bench::register_spec(spec);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
