/**
 * @file
 * Renders the paper's evaluation figures as ASCII bar charts:
 *
 *   Figure 4 — throughput for descendant-free queries (Experiment A)
 *   Figure 5 — originals vs descendant rewritings (Experiment B)
 *   Figure 6 — additional queries and their rewritings (Experiment C)
 *
 * Unlike the google-benchmark binaries (which produce the tables), this
 * tool takes quick best-of-N measurements and draws the grouped bars the
 * paper plots, so the figure shapes can be eyeballed directly. Counts are
 * verified across engines before timing, as everywhere else.
 */
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/harness.h"

namespace {

using namespace descend;

/** Rows accumulated for BENCH_pipeline.json (section "figures"). */
std::vector<bench::BenchRow> json_rows;

void record(const std::string& id, const char* engine, double gbps,
            std::vector<std::pair<std::string, double>> extra = {})
{
    json_rows.push_back({"figures", id + "/" + engine,
                         simd::level_name(simd::default_level()), gbps,
                         std::move(extra)});
}

/**
 * Counter context for a descend row: one untimed run with the registry on,
 * reduced to the skip-attribution numbers that explain the row's speed
 * (which fraction of blocks each technique removed from the structural
 * path). Empty when the library was built with DESCEND_OBS=OFF.
 */
std::vector<std::pair<std::string, double>> obs_extra(
    const DescendEngine& engine, const PaddedString& doc)
{
    std::vector<std::pair<std::string, double>> extra;
    if constexpr (obs::kEnabled) {
        CountSink sink;
        RunStats stats = engine.run_with_stats(doc, sink);
        const obs::Counters& c = stats.counters;
        auto put = [&](const char* key, obs::Counter id) {
            extra.emplace_back(key,
                               static_cast<double>(c.get(id)));
        };
        put("blocks_structural", obs::Counter::kBlocksStructural);
        put("blocks_child_skipped", obs::Counter::kBlocksChildSkipped);
        put("blocks_sibling_skipped", obs::Counter::kBlocksSiblingSkipped);
        put("blocks_head_skip", obs::Counter::kBlocksHeadSkip);
        put("structural_events", obs::Counter::kStructuralEvents);
        put("depth_stack_pushes", obs::Counter::kDepthStackPushes);
    }
    return extra;
}

double measure_gbps(const JsonPathEngine& engine, const PaddedString& doc,
                    std::size_t expected)
{
    double best_seconds = 1e100;
    for (int run = 0; run < 3; ++run) {
        auto start = std::chrono::steady_clock::now();
        std::size_t count = engine.count(doc);
        double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                .count();
        if (count != expected) {
            std::fprintf(stderr, "count mismatch!\n");
            std::abort();
        }
        best_seconds = std::min(best_seconds, seconds);
    }
    return static_cast<double>(doc.size()) / best_seconds / 1e9;
}

void bar(const char* name, double gbps, double scale_max)
{
    int width = static_cast<int>(gbps / scale_max * 50.0);
    std::printf("  %-10s %6.2f GB/s |%.*s\n", name, gbps, width,
                "##################################################");
}

void figure_row(const std::string& id)
{
    auto specs = bench::catalog_subset({id});
    if (specs.empty()) {
        return;
    }
    const bench::QuerySpec& spec = specs.front();
    const PaddedString& doc = bench::dataset(spec.dataset);
    std::size_t expected = bench::verified_count(spec.dataset, spec.query);

    std::printf("%-4s %s  [%zu matches]\n", spec.id.c_str(), spec.query.c_str(),
                expected);
    constexpr double kScaleMax = 6.0;
    DescendEngine ours = DescendEngine::for_query(spec.query);
    double descend_gbps = measure_gbps(ours, doc, expected);
    bar("descend", descend_gbps, kScaleMax);
    record(spec.id, "descend", descend_gbps, obs_extra(ours, doc));
    if (spec.ski_supported) {
        SkiEngine ski = SkiEngine::for_query(spec.query);
        if (ski.count(doc) == expected) {
            double ski_gbps = measure_gbps(ski, doc, expected);
            bar("jsonski", ski_gbps, kScaleMax);
            record(spec.id, "jsonski", ski_gbps);
        }
    }
    SurferEngine surfer = SurferEngine::for_query(spec.query);
    double surfer_gbps = measure_gbps(surfer, doc, expected);
    bar("jsurfer", surfer_gbps, kScaleMax);
    record(spec.id, "jsurfer", surfer_gbps);
}

void figure(const char* title, const std::vector<std::string>& ids)
{
    std::printf("\n==== %s ====\n\n", title);
    for (const std::string& id : ids) {
        figure_row(id);
    }
}

}  // namespace

int main(int argc, char** argv)
{
    descend::bench::apply_simd_flag(argc, argv);
    figure("Figure 4: descendant-free queries (Experiment A)",
           {"B1", "B2", "B3", "G1", "G2", "N1", "N2", "T1", "T2", "W1", "W2",
            "Wi"});
    figure("Figure 5: originals vs descendant rewritings (Experiment B)",
           {"B1", "B1r", "B2", "B2r", "B3", "B3r", "G2", "G2r", "W1", "W1r",
            "W2", "W2r", "Wi", "Wir"});
    figure("Figure 6: additional queries (Experiment C)",
           {"A1", "A2", "C1", "C2", "C2r", "C3", "C3r", "Ts", "Tsp", "Tsr"});
    descend::bench::merge_bench_json("figures", json_rows);
    return 0;
}
