/**
 * @file
 * Experiment C (paper Section 5.6, Table 6 / Figure 6): limitations and
 * opportunities.
 *
 *  - A1: highly selective pure-descendant query — head-skipping at full
 *    speed.
 *  - A2: nested, ambiguous labels — the depth-stack grows; the paper's
 *    hardest case (barely faster than the scalar baseline).
 *  - C1: very low selectivity — memmem degenerates to short hops.
 *  - C2 vs C2r: a rewriting that does NOT pay (authors nested in
 *    references); C3 vs C3r: one that pays hugely (editors are rare).
 *  - Ts vs Tsp vs Tsr: the less specified the path, the faster.
 */
#include "bench/harness.h"

int main(int argc, char** argv)
{
    descend::bench::register_ids({"A1", "A2", "C1", "C2", "C2r", "C3", "C3r", "Ts",
                                  "Tsp", "Tsr"});
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
